"""Span export: Chrome trace-event JSON, OTLP JSON and a text tree renderer.

``to_chrome_trace`` emits the `chrome://tracing` / Perfetto "trace event"
format — a JSON list of complete (``"ph": "X"``) events with microsecond
timestamps — so a traced polystore query can be dropped straight into the
browser's trace viewer: one row per thread (runtime workers, plan-wave
threads, morsel workers), spans nested by time.

``to_otlp`` shapes the same spans as an OTLP/JSON ``ExportTraceServiceRequest``
(``resourceSpans`` → ``scopeSpans`` → ``spans`` with hex ids, nanosecond
timestamps and typed attribute values), so traces can be posted to any
OpenTelemetry collector's ``/v1/traces`` endpoint without an SDK dependency.

``render_tree`` is the terminal-friendly view: the same spans as an
indented parent/child tree with durations and attributes, grouped by trace.
"""

from __future__ import annotations

import json
import os
from typing import IO, Any, Iterable

from repro.observability.tracing import Span

__all__ = ["render_tree", "to_chrome_trace", "to_otlp", "write_chrome_trace", "write_otlp"]


def to_chrome_trace(spans: Iterable[Span]) -> list[dict[str, Any]]:
    """Spans as Chrome trace-event dicts (complete events, ``ph="X"``)."""
    events: list[dict[str, Any]] = []
    tids: dict[str, int] = {}
    ordered = sorted(spans, key=lambda s: (s.start_s, s.span_id))
    for span in ordered:
        tid = tids.setdefault(span.thread, len(tids) + 1)
        events.append(
            {
                "name": span.name,
                "cat": span.kind,
                "ph": "X",
                "ts": round(span.start_s * 1_000_000, 3),
                "dur": round(span.duration_s * 1_000_000, 3),
                "pid": span.trace_id,
                "tid": tid,
                "args": {
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    **span.attrs,
                },
            }
        )
    # Thread-name metadata rows so the viewer labels each lane.
    for name, tid in tids.items():
        pids = {event["pid"] for event in events}
        for pid in sorted(pids):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": name},
                }
            )
    return events


def write_chrome_trace(target: "str | os.PathLike[str] | IO[str]",
                       spans: Iterable[Span]) -> int:
    """Write spans as Chrome trace JSON to a path or file object.

    Returns the number of trace events written (metadata rows included).
    """
    events = to_chrome_trace(spans)
    payload = json.dumps(events, indent=1, default=str)
    if isinstance(target, (str, os.PathLike)):
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(payload)
    else:
        target.write(payload)
    return len(events)


def _otlp_value(value: Any) -> dict[str, Any]:
    """One attribute value in OTLP's typed ``AnyValue`` JSON encoding."""
    if isinstance(value, bool):
        return {"boolValue": value}
    if isinstance(value, int):
        return {"intValue": str(value)}  # int64s are JSON strings in OTLP
    if isinstance(value, float):
        return {"doubleValue": value}
    return {"stringValue": str(value)}


def _otlp_attributes(attrs: dict[str, Any]) -> list[dict[str, Any]]:
    return [
        {"key": key, "value": _otlp_value(value)}
        for key, value in sorted(attrs.items())
    ]


def to_otlp(spans: Iterable[Span],
            service_name: str = "bigdawg-repro") -> dict[str, Any]:
    """Spans as an OTLP/JSON ``ExportTraceServiceRequest`` body.

    The returned dict can be ``json.dumps``-ed and POSTed to an
    OpenTelemetry collector's ``/v1/traces`` endpoint as-is.  Trace and
    span ids are zero-padded hex (32 and 16 chars — the tracer's small
    integer ids embed in the low bits); timestamps are unix nanoseconds
    encoded as strings, per the OTLP JSON mapping of int64.  The span's
    ``kind`` and recording thread travel as attributes, since our span
    kinds (``query``, ``cast``, ``resilience``...) are domain labels, not
    OTLP's client/server enum.
    """
    otlp_spans: list[dict[str, Any]] = []
    for span in sorted(spans, key=lambda s: (s.start_s, s.span_id)):
        start_ns = int(span.start_s * 1_000_000_000)
        end_ns = start_ns + int(span.duration_s * 1_000_000_000)
        otlp_spans.append(
            {
                "traceId": f"{span.trace_id & (2**128 - 1):032x}",
                "spanId": f"{span.span_id & (2**64 - 1):016x}",
                "parentSpanId": (
                    "" if span.parent_id is None
                    else f"{span.parent_id & (2**64 - 1):016x}"
                ),
                "name": span.name,
                "kind": 1,  # SPAN_KIND_INTERNAL
                "startTimeUnixNano": str(start_ns),
                "endTimeUnixNano": str(end_ns),
                "attributes": _otlp_attributes(
                    {"span.kind": span.kind, "thread.name": span.thread, **span.attrs}
                ),
            }
        )
    return {
        "resourceSpans": [
            {
                "resource": {
                    "attributes": _otlp_attributes({"service.name": service_name}),
                },
                "scopeSpans": [
                    {
                        "scope": {"name": "repro.observability", "version": "1"},
                        "spans": otlp_spans,
                    }
                ],
            }
        ]
    }


def write_otlp(target: "str | os.PathLike[str] | IO[str]", spans: Iterable[Span],
               service_name: str = "bigdawg-repro") -> int:
    """Write spans as an OTLP/JSON request body to a path or file object.

    Returns the number of spans written.
    """
    payload = to_otlp(spans, service_name=service_name)
    text = json.dumps(payload, indent=1, default=str)
    if isinstance(target, (str, os.PathLike)):
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        target.write(text)
    return len(payload["resourceSpans"][0]["scopeSpans"][0]["spans"])


def render_tree(spans: Iterable[Span], include_attrs: bool = True) -> str:
    """Spans as an indented text tree, one block per trace.

    Orphaned spans (parent dropped by the tracer's buffer bound, or
    recorded outside any ambient span) render as additional roots.
    """
    span_list = sorted(spans, key=lambda s: (s.trace_id, s.start_s, s.span_id))
    by_id = {span.span_id: span for span in span_list}
    children: dict[int | None, list[Span]] = {}
    for span in span_list:
        parent = span.parent_id if span.parent_id in by_id else None
        children.setdefault(parent, []).append(span)

    lines: list[str] = []

    def emit(span: Span, depth: int) -> None:
        suffix = ""
        if include_attrs and span.attrs:
            rendered = ", ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
            suffix = f"  [{rendered}]"
        lines.append(
            f"{'  ' * depth}{span.name}  {span.duration_s * 1000:.3f}ms{suffix}"
        )
        for child in children.get(span.span_id, ()):
            emit(child, depth + 1)

    roots = children.get(None, ())
    last_trace: int | None = None
    for root in roots:
        if root.trace_id != last_trace:
            if lines:
                lines.append("")
            lines.append(f"trace {root.trace_id}:")
            last_trace = root.trace_id
        emit(root, 1)
    return "\n".join(lines)
