"""Per-operator execution profiling: the engine behind EXPLAIN ANALYZE.

A :class:`PlanProfiler` walks a logical plan once, creating one
:class:`OperatorProfile` per node (keyed by node identity) seeded with the
optimizer's *estimated* cardinality.  During execution each operator reports
its *actuals* — rows out, batches, inclusive wall time — through one of two
channels:

* the vectorized path wraps every operator's batch iterator with
  :func:`observe_stream`, which accounts each pull (time producing a batch,
  inclusive of the subtree, exclusive of downstream consumption — the same
  "actual time" semantics as PostgreSQL's EXPLAIN ANALYZE);
* the row executor times each node's materializing ``execute`` call.

``engine.explain(sql, analyze=True)`` renders estimated vs. actual per
operator via :meth:`PlanProfiler.annotation`.  The same stream wrapper also
emits one ``op.<NodeType>`` span per operator when the global tracer is
enabled, so traced queries show operator timing without profiling overhead
on untraced runs.

:class:`SlowQueryLog` is the third observability primitive here: a bounded
log of queries whose wall time crossed a configurable threshold (disabled
until a threshold is set).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Iterator

from repro.observability.tracing import Tracer

__all__ = ["OperatorProfile", "PlanProfiler", "SlowQueryLog", "observe_stream"]


class OperatorProfile:
    """Estimated vs. actual execution accounting for one plan node."""

    __slots__ = (
        "label",
        "depth",
        "estimated_rows",
        "rows_out",
        "batches",
        "seconds",
        "mode",
    )

    def __init__(self, label: str, depth: int, estimated_rows: int | None) -> None:
        self.label = label
        self.depth = depth
        self.estimated_rows = estimated_rows
        self.rows_out: int | None = None
        self.batches: int | None = None
        self.seconds: float | None = None
        self.mode: str | None = None

    @property
    def recorded(self) -> bool:
        return self.mode is not None

    def record(
        self, rows: int, seconds: float, batches: int | None = None, mode: str = "vectorized"
    ) -> None:
        self.rows_out = rows
        self.batches = batches
        self.seconds = seconds
        self.mode = mode

    def annotation(self) -> str:
        """The EXPLAIN ANALYZE suffix for this operator."""
        est = "?" if self.estimated_rows is None else str(self.estimated_rows)
        if not self.recorded:
            return f"(estimated={est} rows, not executed)"
        parts = [f"estimated={est} rows", f"actual={self.rows_out} rows"]
        if self.batches is not None:
            parts.append(f"batches={self.batches}")
        parts.append(f"time={self.seconds * 1000:.3f}ms")
        return f"({', '.join(parts)})"


class PlanProfiler:
    """Per-node profiles for one plan execution, keyed by node identity."""

    def __init__(
        self,
        plan: Any,
        estimator: Callable[[Any], int | None] | None = None,
    ) -> None:
        self._entries: dict[int, OperatorProfile] = {}
        self.total_seconds: float | None = None
        self.result_rows: int | None = None

        def estimate(node: Any) -> int | None:
            if estimator is None:
                return None
            try:
                return estimator(node)
            except Exception:  # noqa: BLE001 - estimates must never fail a query
                return None

        def walk(node: Any, depth: int) -> None:
            self._entries[id(node)] = OperatorProfile(
                node.describe(), depth, estimate(node)
            )
            for child in node.children():
                walk(child, depth + 1)

        walk(plan, 0)

    def entry(self, node: Any) -> OperatorProfile | None:
        return self._entries.get(id(node))

    def annotation(self, node: Any) -> str:
        profile = self._entries.get(id(node))
        if profile is None:  # pragma: no cover - every plan node is registered
            return ""
        return profile.annotation()

    def profiles(self) -> list[OperatorProfile]:
        """All operator profiles in plan preorder (registration order)."""
        return list(self._entries.values())


def observe_stream(
    node: Any,
    batches: Iterator[Any],
    profiler: PlanProfiler | None,
    tracer: Tracer | None,
) -> Iterator[Any]:
    """Wrap one operator's batch iterator with rows/batches/time accounting.

    Timing is accumulated per pull, so a node is charged for producing its
    batches (subtree inclusive) but not for whatever downstream does with
    them while this generator is suspended.  On exhaustion (or early close,
    e.g. under LIMIT) the totals land in the profiler entry and — when the
    tracer is enabled — one ``op.<NodeType>`` span.
    """
    entry = profiler.entry(node) if profiler is not None else None
    if entry is not None and entry.recorded:
        # The row executor already accounted this subtree (fallback path);
        # re-recording from the stream side would double count.
        entry = None
    rows = 0
    count = 0
    seconds = 0.0
    start_wall = time.time()
    iterator = iter(batches)
    try:
        while True:
            begin = time.perf_counter()
            try:
                batch = next(iterator)
            except StopIteration:
                seconds += time.perf_counter() - begin
                return
            seconds += time.perf_counter() - begin
            rows += len(batch)
            count += 1
            yield batch
    finally:
        if entry is not None:
            entry.record(rows, seconds, batches=count, mode="vectorized")
        if tracer is not None and tracer.enabled:
            tracer.record(
                f"op.{type(node).__name__}",
                start_s=start_wall,
                duration_s=seconds,
                kind="operator",
                label=node.describe(),
                rows=rows,
                batches=count,
            )


class SlowQuery:
    """One slow-query log entry."""

    __slots__ = ("query", "seconds", "timestamp", "attrs")

    def __init__(self, query: str, seconds: float, attrs: dict[str, Any]) -> None:
        self.query = query
        self.seconds = seconds
        self.timestamp = time.time()
        self.attrs = attrs

    def to_dict(self) -> dict[str, Any]:
        return {
            "query": self.query,
            "seconds": round(self.seconds, 6),
            "timestamp": self.timestamp,
            **self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SlowQuery({self.seconds * 1000:.1f}ms, {self.query!r})"


class SlowQueryLog:
    """Bounded log of queries slower than a configurable threshold.

    Disabled (and free) until :attr:`threshold_s` is set; ``observe`` is
    then one comparison per query plus an append on the slow side only.
    """

    def __init__(self, threshold_s: float | None = None, capacity: int = 128) -> None:
        self.threshold_s = threshold_s
        self._lock = threading.Lock()
        self._entries: deque[SlowQuery] = deque(maxlen=capacity)

    @property
    def enabled(self) -> bool:
        return self.threshold_s is not None

    def observe(self, query: str, seconds: float, **attrs: Any) -> bool:
        threshold = self.threshold_s
        if threshold is None or seconds < threshold:
            return False
        with self._lock:
            self._entries.append(SlowQuery(query, seconds, attrs))
        return True

    def entries(self) -> list[SlowQuery]:
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
