"""A typed metric registry: counters, gauges and histograms by name.

Before this module, every new engine- or runtime-level counter grew the
optional-kwarg list of ``RuntimeMetrics.snapshot()`` — eight kwargs and
counting.  Now components *register* metrics under namespaced names
(``relational_execution_modes``, ``admission_queue_wait``, ...) and one
``registry.snapshot()`` call flattens everything into a single dict, so a
dashboard, a test or a benchmark reads the whole system from one place
without the serving layer knowing each engine's internals.

Three metric types:

* :class:`Counter` — a monotonically increasing integer (``inc``).
* :class:`Gauge` — a point-in-time value, either pushed (``set``) or
  computed on read from a registered callable (the pattern the runtime
  uses to aggregate per-engine counters lazily).
* :class:`Histogram` — a bounded sliding window of observations with
  percentile summaries (the same windowing the latency metrics use).

All types are thread-safe; registration is idempotent per (name, type) and
re-registering a name as a different type raises, so two subsystems cannot
silently fight over one key.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Any, Callable

__all__ = ["Counter", "Gauge", "Histogram", "MetricRegistry"]


class Counter:
    """Monotonic counter."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def snapshot_value(self) -> int:
        return self.value


class Gauge:
    """Point-in-time value: pushed with ``set`` or computed from a callable."""

    __slots__ = ("_lock", "_value", "_fn")

    def __init__(self, fn: Callable[[], Any] | None = None) -> None:
        self._lock = threading.Lock()
        self._value: Any = 0
        self._fn = fn

    def set(self, value: Any) -> None:
        with self._lock:
            self._value = value

    def set_max(self, value: Any) -> None:
        with self._lock:
            if value > self._value:
                self._value = value

    @property
    def value(self) -> Any:
        if self._fn is not None:
            return self._fn()
        with self._lock:
            return self._value

    def snapshot_value(self) -> Any:
        return self.value


class Histogram:
    """Bounded sliding window of float observations with percentiles.

    ``snapshot_value`` flattens to ``{count, total, mean, p50, p95, p99,
    max}`` — the registry prefixes each with the histogram's name.
    """

    __slots__ = ("_lock", "_window", "_count", "_total", "_max")

    def __init__(self, window: int = 4096) -> None:
        self._lock = threading.Lock()
        self._window: deque[float] = deque(maxlen=window)
        self._count = 0
        self._total = 0.0
        self._max = 0.0

    def observe(self, value: float) -> None:
        with self._lock:
            self._window.append(value)
            self._count += 1
            self._total += value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        with self._lock:
            return self._total

    def percentile(self, percentile: float) -> float | None:
        """Linear-interpolated percentile over the recent window, or None."""
        with self._lock:
            samples = sorted(self._window)
        if not samples:
            return None
        rank = (percentile / 100.0) * (len(samples) - 1)
        lower = math.floor(rank)
        upper = math.ceil(rank)
        if lower == upper:
            return samples[lower]
        fraction = rank - lower
        return samples[lower] * (1 - fraction) + samples[upper] * fraction

    def snapshot_value(self) -> dict[str, Any]:
        with self._lock:
            count, total, peak = self._count, self._total, self._max
        return {
            "count": count,
            "total": round(total, 6),
            "mean": round(total / count, 6) if count else 0.0,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": round(peak, 6),
        }


class MetricRegistry:
    """Get-or-create registry of named metrics plus one flat snapshot."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    # -------------------------------------------------------------- creation
    def _get_or_create(self, name: str, factory: Callable[[], Any], kind: type) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise TypeError(
                    f"metric {name!r} is already registered as "
                    f"{type(metric).__name__}, not {kind.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, Gauge)

    def register_gauge(self, name: str, fn: Callable[[], Any]) -> Gauge:
        """A computed gauge: ``fn`` is called at snapshot time.

        Re-registering the same name swaps the callable — the pattern for a
        runtime that rebuilds its aggregation closures on reconfiguration.
        """
        with self._lock:
            metric = self._metrics.get(name)
            if metric is not None and not isinstance(metric, Gauge):
                raise TypeError(
                    f"metric {name!r} is already registered as {type(metric).__name__}"
                )
            gauge = Gauge(fn)
            self._metrics[name] = gauge
            return gauge

    def histogram(self, name: str, window: int = 4096) -> Histogram:
        return self._get_or_create(name, lambda: Histogram(window), Histogram)

    # -------------------------------------------------------------- snapshot
    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> dict[str, Any]:
        """One flat dict of every registered metric.

        Counters and gauges land under their own name; histograms expand to
        ``<name>_count`` / ``<name>_total`` / ``<name>_mean`` / ``<name>_p50``
        / ``<name>_p95`` / ``<name>_p99`` / ``<name>_max``.
        """
        with self._lock:
            metrics = dict(self._metrics)
        out: dict[str, Any] = {}
        for name in sorted(metrics):
            metric = metrics[name]
            value = metric.snapshot_value()
            if isinstance(metric, Histogram):
                for key, sub in value.items():
                    out[f"{name}_{key}"] = sub
            else:
                out[name] = value
        return out
