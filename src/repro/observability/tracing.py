"""Lightweight distributed-style tracing for the polystore.

A :class:`Tracer` collects :class:`Span` records for everything a query does:
the runtime lifecycle (queued → admitted → planned → executed), each
cross-island plan step, each CAST stage (export/encode/decode/import per
chunk) and each relational operator, down to morsel probe waves and spill
runs.  Spans form a tree via parent ids, and the ambient "current span" is a
*module-level thread-local* so span creation anywhere in the stack attaches
to the right parent without plumbing handles through every layer.

Two properties drive the design:

* **Near-zero cost disabled.**  ``tracer.span(...)`` on a disabled tracer
  returns the shared :data:`NULL_SPAN` singleton — no allocation, no
  thread-local write, no lock.  Hot paths additionally gate per-item spans
  on ``tracer.enabled``.
* **Context survives thread pools.**  Worker threads (the runtime's
  scheduler pool, its per-wave plan threads, and ``TaskContext`` morsel
  workers) do not inherit the submitter's thread-local.  The submitting
  side calls :func:`capture_context` (one ``getattr``) and the worker runs
  the task through :func:`with_context`, which installs the captured span
  as the ambient parent for the duration of the call.
"""

from __future__ import annotations

import contextlib
import itertools
import threading
import time
from typing import Any, Callable, Iterable, Iterator

from repro.common import cancellation

__all__ = [
    "NULL_SPAN",
    "Span",
    "Tracer",
    "capture_context",
    "current_span",
    "get_tracer",
    "set_tracer",
    "tracer_scope",
    "with_context",
]

# .span   -> the innermost live Span on this thread
# .tracer -> a thread-scoped Tracer override (see :func:`tracer_scope`)
_ACTIVE = threading.local()

_SPAN_IDS = itertools.count(1)
_TRACE_IDS = itertools.count(1)


def current_span() -> "Span | None":
    """The innermost live span on the calling thread, or None."""
    return getattr(_ACTIVE, "span", None)


def capture_context() -> "tuple[Span | None, Tracer | None, Any] | None":
    """Snapshot the ambient (span, tracer override, cancellation token).

    Returns None when there is nothing to carry, so the disabled path in
    :func:`with_context` stays one ``is None`` check.  The cancellation
    token rides along with the trace context because the two have exactly
    the same propagation problem: worker threads (scheduler pool, plan-wave
    threads, morsel workers) do not inherit the submitter's thread-locals.
    """
    span = getattr(_ACTIVE, "span", None)
    tracer = getattr(_ACTIVE, "tracer", None)
    token = cancellation.current_token()
    if span is None and tracer is None and token is None:
        return None
    return (span, tracer, token)


def with_context(ctx: Any, fn: Callable, *args: Any, **kwargs: Any) -> Any:
    """Run ``fn`` with a captured context installed as the thread's ambient.

    ``ctx`` is what :func:`capture_context` returned: None (nothing to
    carry — ``fn`` is called directly), a ``(span, tracer, token)`` triple,
    a ``(span, tracer)`` pair from older callers, or a bare :class:`Span`.
    """
    if ctx is None:
        return fn(*args, **kwargs)
    token = None
    if isinstance(ctx, tuple):
        if len(ctx) == 3:
            span, tracer, token = ctx
        else:
            span, tracer = ctx
    else:
        span, tracer = ctx, None
    prev_span = getattr(_ACTIVE, "span", None)
    prev_tracer = getattr(_ACTIVE, "tracer", None)
    prev_token = cancellation._install(token)
    _ACTIVE.span = span
    _ACTIVE.tracer = tracer
    try:
        return fn(*args, **kwargs)
    finally:
        _ACTIVE.span = prev_span
        _ACTIVE.tracer = prev_tracer
        cancellation._install(prev_token)


@contextlib.contextmanager
def tracer_scope(tracer: "Tracer") -> "Iterator[Tracer]":
    """Install ``tracer`` as this thread's tracer for the ``with`` body.

    Everything under the block that calls :func:`get_tracer` — the
    scheduler, CAST pipeline, operators — sees ``tracer`` instead of the
    process-global one, and :func:`capture_context` carries the override
    into worker threads.  This is how ``runtime.trace(query)`` collects one
    query's spans without enabling tracing for concurrent traffic, and how
    sampled tracing silences the queries that lost the draw.
    """
    prev = getattr(_ACTIVE, "tracer", None)
    _ACTIVE.tracer = tracer
    try:
        yield tracer
    finally:
        _ACTIVE.tracer = prev


class _NullSpan:
    """Shared do-nothing span: the disabled tracer's only return value."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, key: str, value: Any) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class Span:
    """One timed, attributed node in a trace tree.

    ``start_s`` is wall-clock epoch seconds (for export alignment across
    threads); ``duration_s`` is measured with ``perf_counter`` so short
    spans stay precise.  Use as a context manager, or let the tracer
    record pre-measured spans via :meth:`Tracer.record`.
    """

    __slots__ = (
        "name",
        "kind",
        "trace_id",
        "span_id",
        "parent_id",
        "start_s",
        "duration_s",
        "thread",
        "attrs",
        "_tracer",
        "_prev",
        "_start_perf",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        kind: str,
        trace_id: int,
        parent_id: int | None,
        attrs: dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.kind = kind
        self.trace_id = trace_id
        self.span_id = next(_SPAN_IDS)
        self.parent_id = parent_id
        self.start_s = time.time()
        self.duration_s = 0.0
        self.thread = threading.current_thread().name
        self.attrs = attrs
        self._prev: Span | None = None
        self._start_perf = time.perf_counter()

    def set(self, key: str, value: Any) -> "Span":
        self.attrs[key] = value
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        if exc_type is not None:
            self.attrs["error"] = getattr(exc_type, "__name__", str(exc_type))
        self.finish()
        return False

    def finish(self) -> None:
        self.duration_s = time.perf_counter() - self._start_perf
        _ACTIVE.span = self._prev
        self._tracer._collect(self)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "thread": self.thread,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id}, "
            f"{self.duration_s * 1000:.3f}ms)"
        )


class Tracer:
    """Collects spans into a bounded in-memory buffer.

    Disabled by default: every ``span()`` call then returns
    :data:`NULL_SPAN` without allocating.  ``max_spans`` bounds memory on
    long traced runs; overflow increments :attr:`dropped` instead of
    growing without limit.
    """

    def __init__(self, enabled: bool = False, max_spans: int = 100_000,
                 sample_every: int | None = None) -> None:
        self.enabled = enabled
        self.max_spans = max_spans
        #: Trace one query in every ``sample_every`` (None/1 = every query).
        self.sample_every = sample_every
        self.dropped = 0
        self.sampled = 0
        self.unsampled = 0
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._sample_clock = 0

    # ----------------------------------------------------------------- control
    def enable(self) -> "Tracer":
        self.enabled = True
        return self

    def disable(self) -> "Tracer":
        self.enabled = False
        return self

    def reset(self) -> None:
        with self._lock:
            self._spans = []
            self.dropped = 0
            self.sampled = 0
            self.unsampled = 0
            self._sample_clock = 0

    def sample_query(self) -> bool:
        """Whether the next query should be traced (1-in-``sample_every``).

        Deterministic round-robin rather than random: query ``0, N, 2N, ...``
        of the tracer's lifetime are traced, so a load test with
        ``sample_every=100`` records exactly 1% of its queries.  Always True
        without sampling configured; always False disabled.
        """
        if not self.enabled:
            return False
        if not self.sample_every or self.sample_every <= 1:
            return True
        with self._lock:
            chosen = self._sample_clock % self.sample_every == 0
            self._sample_clock += 1
            if chosen:
                self.sampled += 1
            else:
                self.unsampled += 1
        return chosen

    # ------------------------------------------------------------------- spans
    def span(self, name: str, kind: str = "span", **attrs: Any) -> "Span | _NullSpan":
        """Start a live span parented to the thread's current span.

        The span becomes the ambient parent until it finishes (use it as a
        context manager).  Disabled tracers return :data:`NULL_SPAN`.
        """
        if not self.enabled:
            return NULL_SPAN
        parent = getattr(_ACTIVE, "span", None)
        if parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = next(_TRACE_IDS), None
        span = Span(self, name, kind, trace_id, parent_id, attrs)
        span._prev = parent
        _ACTIVE.span = span
        return span

    def record(
        self,
        name: str,
        start_s: float,
        duration_s: float,
        parent: "Span | None" = None,
        kind: str = "span",
        **attrs: Any,
    ) -> "Span | _NullSpan":
        """Append an already-measured span without making it ambient.

        Used where the interval was timed externally (operator stream
        accounting, queue wait measured across threads).  ``parent``
        defaults to the thread's current span.
        """
        if not self.enabled:
            return NULL_SPAN
        if parent is None:
            parent = getattr(_ACTIVE, "span", None)
        if parent is not None and not isinstance(parent, Span):
            parent = None
        if parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = next(_TRACE_IDS), None
        span = Span(self, name, kind, trace_id, parent_id, attrs)
        span.start_s = start_s
        span.duration_s = duration_s
        self._collect(span)
        return span

    def _collect(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) >= self.max_spans:
                self.dropped += 1
                return
            self._spans.append(span)

    # ------------------------------------------------------------------ access
    def spans(self, name: str | None = None) -> list[Span]:
        with self._lock:
            spans = list(self._spans)
        if name is not None:
            spans = [s for s in spans if s.name == name]
        return spans

    def span_names(self) -> set[str]:
        with self._lock:
            return {s.name for s in self._spans}

    def find(self, predicate: Callable[[Span], bool]) -> list[Span]:
        with self._lock:
            return [s for s in self._spans if predicate(s)]

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


#: Process-global tracer, disabled until someone opts in.  All instrumented
#: components read it through :func:`get_tracer`, so tests (and the example
#: scripts) can swap in a fresh tracer with :func:`set_tracer`.
_GLOBAL_TRACER = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The calling thread's tracer: a :func:`tracer_scope` override if one
    is installed, else the process-global tracer."""
    override = getattr(_ACTIVE, "tracer", None)
    return override if override is not None else _GLOBAL_TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-global tracer; returns the old one."""
    global _GLOBAL_TRACER
    previous = _GLOBAL_TRACER
    _GLOBAL_TRACER = tracer
    return previous
