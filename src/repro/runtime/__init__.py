"""The concurrent polystore runtime: the serving layer in front of BigDAWG.

The paper pitches BigDAWG as middleware serving many simultaneous clients
across heterogeneous engines.  This package supplies that serving layer for
the reproduction:

* :mod:`repro.runtime.scheduler` — :class:`PolystoreRuntime`, a worker-pool
  executor with ``submit``/``execute_many`` that runs cross-island plans
  concurrently and overlaps independent plan steps, plus per-client
  :class:`RuntimeSession` handles with session-scoped temporaries.
* :mod:`repro.runtime.admission` — per-engine admission control: bounded
  concurrent slots with a FIFO wait queue and timeout, so a slow array scan
  cannot starve relational traffic.
* :mod:`repro.runtime.cache` — a versioned result cache keyed by normalized
  query text and the catalog/engine write-versions, invalidated automatically
  by CASTs, imports, drops and temp materializations.
* :mod:`repro.runtime.metrics` — throughput, latency percentiles, queue depth
  and cache hit rate, feeding the :class:`~repro.core.monitor.ExecutionMonitor`
  so the :class:`~repro.core.monitor.MigrationAdvisor` learns from production
  traffic instead of only offline probes.
* :mod:`repro.runtime.resilience` — retry with exponential backoff plus
  per-engine circuit breakers, checked before admission so traffic to a
  tripped engine fails fast (or, opt-in, is served a flagged stale result).
* :mod:`repro.runtime.faults` — the chaos harness: inject failures, latency,
  mid-stream deaths, whole-engine outages and simulated process crashes at
  journal boundaries into any in-process engine.
* :mod:`repro.runtime.journal` — the write-ahead intent journal: every DML
  dispatch, CAST protocol step and primary election appends begin/step/
  commit records (with idempotency tokens) before acting, so a crash leaves
  a replayable record instead of a mystery.
* :mod:`repro.runtime.recovery` — crash recovery: replay the journal at
  startup, roll committed work forward, roll incomplete work back (drop
  shadows, un-promote half-elected primaries), repair or discard demoted
  primaries, and reconcile the catalog against engine state.
"""

from repro.runtime.admission import AdmissionController, AdmissionTimeout, EngineGate
from repro.runtime.cache import ResultCache
from repro.runtime.faults import FaultInjector, FaultSpec, InjectedFault
from repro.runtime.journal import (
    CRASH_POINTS,
    FileJournalBackend,
    Intent,
    IntentState,
    MemoryJournalBackend,
    WriteIntentJournal,
    all_crash_points,
)
from repro.runtime.metrics import RuntimeMetrics
from repro.runtime.recovery import JournalRecovery, RecoveryReport
from repro.runtime.resilience import CircuitBreaker, EngineResilience, RetryBudget, RetryPolicy
from repro.runtime.scheduler import PolystoreRuntime, RuntimeSession

__all__ = [
    "AdmissionController",
    "AdmissionTimeout",
    "CRASH_POINTS",
    "CircuitBreaker",
    "EngineGate",
    "EngineResilience",
    "FaultInjector",
    "FaultSpec",
    "FileJournalBackend",
    "InjectedFault",
    "Intent",
    "IntentState",
    "JournalRecovery",
    "MemoryJournalBackend",
    "PolystoreRuntime",
    "RecoveryReport",
    "ResultCache",
    "RetryBudget",
    "RetryPolicy",
    "RuntimeMetrics",
    "RuntimeSession",
    "WriteIntentJournal",
    "all_crash_points",
]
