"""Per-engine admission control for the concurrent runtime.

Every storage engine gets a *gate*: a bounded number of concurrent execution
slots plus a FIFO wait queue.  A plan step must be admitted by the gates of
every engine it touches before it runs, so a burst of slow array scans can
saturate only the array engine's slots while relational traffic keeps
flowing through its own.  Waiters are served strictly in arrival order and
give up with :class:`AdmissionTimeout` once the configured timeout passes —
bounded queueing rather than unbounded convoy, the property the
hybrid-hash-join robustness literature calls load-bounded admission.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Iterable, Iterator

from repro.common.errors import BigDawgError


class AdmissionTimeout(BigDawgError):
    """Raised when a query waited longer than the admission timeout for a slot."""


class EngineGate:
    """Bounded concurrent slots for one engine, with a FIFO wait queue.

    Besides the admission counters, the gate separates the two timings the
    tail-latency story needs: *queue-wait* (seconds a ticket was blocked
    before admission — recorded by :meth:`acquire` and reported through
    ``on_wait``) and *hold* (seconds the admitted step kept its slot, i.e.
    execution — recorded by the admission controller via
    :meth:`record_hold`).  End-to-end latency alone cannot distinguish an
    overloaded gate from a slow engine; these two can.
    """

    def __init__(self, engine_name: str, slots: int,
                 on_wait: "callable | None" = None) -> None:
        if slots <= 0:
            raise ValueError(f"slots must be positive, got {slots}")
        self.engine_name = engine_name
        self.slots = slots
        self._condition = threading.Condition()
        self._queue: deque[object] = deque()
        self._in_use = 0
        self._on_wait = on_wait
        # Counters for the metrics surface.
        self.admitted = 0
        self.timed_out = 0
        self.peak_waiting = 0
        self.wait_seconds_total = 0.0
        self.held_seconds_total = 0.0

    # ----------------------------------------------------------------- slots
    def acquire(self, timeout: float | None = None) -> float:
        """Wait (FIFO) for a slot; raise :class:`AdmissionTimeout` on timeout.

        Returns the seconds spent queued before admission.
        """
        ticket = object()
        entered = time.monotonic()
        deadline = None if timeout is None else entered + timeout
        with self._condition:
            self._queue.append(ticket)
            self.peak_waiting = max(self.peak_waiting, len(self._queue))
            while not (self._queue[0] is ticket and self._in_use < self.slots):
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    self._queue.remove(ticket)
                    self.timed_out += 1
                    self.wait_seconds_total += time.monotonic() - entered
                    # Our departure may unblock the ticket behind us.
                    self._condition.notify_all()
                    raise AdmissionTimeout(
                        f"engine {self.engine_name!r}: no free slot within {timeout:.3f}s "
                        f"({self._in_use}/{self.slots} in use, {len(self._queue)} waiting)"
                    )
                self._condition.wait(remaining)
            self._queue.popleft()
            self._in_use += 1
            self.admitted += 1
            waited = time.monotonic() - entered
            self.wait_seconds_total += waited
            # The new queue head may also be admittable (multiple slots).
            self._condition.notify_all()
        if self._on_wait is not None:
            self._on_wait(waited)
        return waited

    def release(self) -> None:
        with self._condition:
            if self._in_use <= 0:
                raise RuntimeError(f"engine gate {self.engine_name!r} released more than acquired")
            self._in_use -= 1
            self._condition.notify_all()

    def record_hold(self, seconds: float) -> None:
        """Account seconds one admitted step held a slot (execution time)."""
        with self._condition:
            self.held_seconds_total += seconds

    # ----------------------------------------------------------------- status
    @property
    def in_use(self) -> int:
        with self._condition:
            return self._in_use

    @property
    def waiting(self) -> int:
        with self._condition:
            return len(self._queue)

    def describe(self) -> dict:
        with self._condition:
            return {
                "engine": self.engine_name,
                "slots": self.slots,
                "in_use": self._in_use,
                "waiting": len(self._queue),
                "admitted": self.admitted,
                "timed_out": self.timed_out,
                "peak_waiting": self.peak_waiting,
                "wait_seconds_total": round(self.wait_seconds_total, 6),
                "held_seconds_total": round(self.held_seconds_total, 6),
            }


class AdmissionController:
    """One :class:`EngineGate` per engine, created on first use.

    ``slots`` overrides the per-engine slot count (``{"scidb": 1}``); every
    other engine gets ``slots_per_engine``.  ``admit`` acquires the gates of
    all engines a step touches in sorted name order — a global acquisition
    order, so two steps touching overlapping engine sets cannot deadlock.
    """

    def __init__(self, slots_per_engine: int = 2, timeout: float | None = 30.0,
                 slots: dict[str, int] | None = None) -> None:
        if slots_per_engine <= 0:
            raise ValueError(f"slots_per_engine must be positive, got {slots_per_engine}")
        self.slots_per_engine = slots_per_engine
        self.timeout = timeout
        #: Optional callable receiving each gate's queue-wait seconds — the
        #: runtime points this at ``RuntimeMetrics.record_queue_wait`` so
        #: backpressure shows up in the registry's histogram.
        self.wait_sink = None
        self._overrides = {name.lower(): count for name, count in (slots or {}).items()}
        self._gates: dict[str, EngineGate] = {}
        self._lock = threading.Lock()

    def gate(self, engine_name: str) -> EngineGate:
        key = engine_name.lower()
        with self._lock:
            if key not in self._gates:
                self._gates[key] = EngineGate(
                    key, self._overrides.get(key, self.slots_per_engine),
                    on_wait=self._record_wait,
                )
            return self._gates[key]

    def _record_wait(self, seconds: float) -> None:
        sink = self.wait_sink
        if sink is not None:
            sink(seconds)

    @contextmanager
    def admit(self, engine_names: Iterable[str],
              timeout: float | None = None) -> Iterator[None]:
        """Hold one slot on every named engine for the duration of the block."""
        effective = self.timeout if timeout is None else timeout
        ordered = sorted({name.lower() for name in engine_names})
        acquired: list[EngineGate] = []
        held_from: float | None = None
        try:
            for name in ordered:
                gate = self.gate(name)
                gate.acquire(effective)
                acquired.append(gate)
            held_from = time.monotonic()
            yield
        finally:
            held = 0.0 if held_from is None else time.monotonic() - held_from
            for gate in reversed(acquired):
                if held_from is not None:
                    gate.record_hold(held)
                gate.release()

    # ----------------------------------------------------------------- status
    def queue_depth(self) -> int:
        """Total queries currently waiting across all gates."""
        with self._lock:
            gates = list(self._gates.values())
        return sum(gate.waiting for gate in gates)

    def queue_wait_seconds(self) -> float:
        """Total seconds spent queued across all gates, ever."""
        with self._lock:
            gates = list(self._gates.values())
        return sum(gate.wait_seconds_total for gate in gates)

    def held_seconds(self) -> float:
        """Total slot-hold (execution) seconds across all gates, ever."""
        with self._lock:
            gates = list(self._gates.values())
        return sum(gate.held_seconds_total for gate in gates)

    def describe(self) -> dict:
        with self._lock:
            gates = list(self._gates.values())
        return {gate.engine_name: gate.describe() for gate in gates}
