"""A versioned result cache for the concurrent runtime.

Entries are keyed by whitespace-normalized query text and stamped with a
*fingerprint* of the polystore's state: the catalog's metadata version plus
every engine's ``write_version``.  A lookup whose stored fingerprint no
longer matches the live fingerprint is a miss (and evicts the stale entry),
which makes invalidation automatic: CASTs bump the target (and, for moves,
source) engine and the catalog; imports, drops and temp materializations bump
their engine; advisor migrations go through CAST.  Nothing has to remember
to call the cache — mutating the polystore *is* the invalidation.

Stores use the same protocol in reverse: the runtime fingerprints *before*
executing and hands that fingerprint to :meth:`ResultCache.put`, which
refuses the entry when the live fingerprint moved during execution — either
because the query itself mutated state (engine-native DML, WITH
materializations) or because a concurrent writer did.  Only results provably
derived from the current polystore state are ever served.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.common.schema import Relation
from repro.core.catalog import BigDawgCatalog

#: fingerprint = (catalog version, ((engine, write_version), ...))
Fingerprint = tuple[int, tuple[tuple[str, int], ...]]


def normalize_query(query: str) -> str:
    """Collapse runs of whitespace so trivially reformatted queries share a key.

    Quoted string literals are preserved verbatim — island languages treat
    them case- and whitespace-sensitively (``SEARCH notes FOR "chest  pain"``
    is a different query from the single-spaced one), so only the whitespace
    *between* tokens is collapsed, and case is never folded.
    """
    result: list[str] = []
    quote: str | None = None
    pending_space = False
    for ch in query:
        if quote is not None:
            result.append(ch)
            if ch == quote:
                quote = None
        elif ch.isspace():
            pending_space = True
        else:
            if pending_space and result:
                result.append(" ")
            pending_space = False
            if ch in ("'", '"'):
                quote = ch
            result.append(ch)
    return "".join(result)


@dataclass
class _Entry:
    relation: Relation
    fingerprint: Fingerprint


class ResultCache:
    """LRU cache of query results, verified against a state fingerprint."""

    def __init__(self, catalog: BigDawgCatalog, capacity: int = 256,
                 keep_stale: bool = False) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._catalog = catalog
        self.capacity = capacity
        #: When True, fingerprint-invalidated entries move to a bounded side
        #: buffer instead of being dropped, so :meth:`get_stale` can serve a
        #: last-known-good result while an engine's breaker is open.
        self.keep_stale = keep_stale
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._stale: "OrderedDict[str, _Entry]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.invalidations = 0
        self.stale_hits = 0

    # ------------------------------------------------------------ fingerprint
    def fingerprint(self) -> Fingerprint:
        """The polystore's current state version, cheap to compute.

        Ephemeral engines (the temp-table engine) are excluded: their
        contents are per-execution scratch that no cacheable query text can
        name, and including them would invalidate the whole cache on every
        WITH query.  Replacing a *pre-existing* temporary name still bumps
        the catalog's durable version, so reuse of a temp name invalidates.
        """
        engines = tuple(
            (engine.name.lower(), engine.write_version)
            for engine in self._catalog.engines()
            if not engine.ephemeral
        )
        return (self._catalog.version, engines)

    # ------------------------------------------------------------------ cache
    def get(self, query: str) -> Relation | None:
        key = normalize_query(query)
        live = self.fingerprint()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            if entry.fingerprint != live:
                # Some engine or the catalog mutated since this was stored.
                del self._entries[key]
                if self.keep_stale:
                    self._demote_locked(key, entry)
                self.invalidations += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return _snapshot(entry.relation)

    def put(self, query: str, relation: Relation, fingerprint: Fingerprint) -> bool:
        """Store a result computed while the polystore was at ``fingerprint``.

        Returns False (and stores nothing) when the live fingerprint has
        moved — the result may not reflect current state.
        """
        if fingerprint != self.fingerprint():
            return False
        key = normalize_query(query)
        with self._lock:
            self._entries[key] = _Entry(_snapshot(relation), fingerprint)
            self._entries.move_to_end(key)
            # A fresh result supersedes any stale copy kept for fallback.
            self._stale.pop(key, None)
            self.stores += 1
            while len(self._entries) > self.capacity:
                evicted_key, evicted = self._entries.popitem(last=False)
                if self.keep_stale:
                    self._demote_locked(evicted_key, evicted)
                self.evictions += 1
        return True

    def get_stale(self, query: str) -> Relation | None:
        """A last-known-good result for ``query``, flagged ``stale=True``.

        This is the opt-in degraded-mode read: the runtime calls it only
        when a circuit breaker refused the live execution.  The returned
        relation carries ``stale=True`` so callers can tell (and render)
        that it may not reflect current engine state.  ``keep_stale=False``
        caches never hold anything here.
        """
        key = normalize_query(query)
        with self._lock:
            entry = self._entries.get(key) or self._stale.get(key)
            if entry is None:
                return None
            self.stale_hits += 1
            snapshot = _snapshot(entry.relation)
        snapshot.stale = True
        return snapshot

    def _demote_locked(self, key: str, entry: _Entry) -> None:
        """Move an invalidated/evicted entry to the bounded stale buffer."""
        self._stale[key] = entry
        self._stale.move_to_end(key)
        while len(self._stale) > self.capacity:
            self._stale.popitem(last=False)

    def invalidate(self) -> None:
        """Drop every entry (state fingerprints make this rarely necessary).

        Stale copies survive on purpose: they exist precisely to outlive
        invalidation, and are bounded by ``capacity``.
        """
        with self._lock:
            self.invalidations += len(self._entries)
            if self.keep_stale:
                for key, entry in self._entries.items():
                    self._demote_locked(key, entry)
            self._entries.clear()

    # ----------------------------------------------------------------- status
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def describe(self) -> dict:
        with self._lock:
            size = len(self._entries)
            stale_size = len(self._stale)
        return {
            "size": size,
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "stores": self.stores,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "keep_stale": self.keep_stale,
            "stale_size": stale_size,
            "stale_hits": self.stale_hits,
        }


def _snapshot(relation: Relation) -> Relation:
    """A shallow copy: fresh row list, shared (treated-as-immutable) rows."""
    copy = Relation(relation.schema)
    copy.rows.extend(relation.rows)
    return copy
