"""Deterministic fault injection for any engine in the polystore.

A federated system's defining failure mode is *partial* failure: one engine
dies, stalls or drops a connection mid-stream while the rest keep serving.
:class:`FaultInjector` makes every one of those failure modes reproducible in
tests by instrumenting an engine *instance* in place:

* **error-on-Nth-call / error-every-N** — the Nth (or every Nth) call to a
  chosen method raises :class:`InjectedFault`;
* **error rate** — a seeded RNG fails a fraction of calls, deterministically
  for a given seed;
* **added latency** — calls sleep before delegating, modelling a slow or
  congested engine;
* **flaky chunk streams** — ``export_chunks`` iterators that die after N
  chunks, and ``import_chunks`` whose *input* stream dies mid-consumption,
  the exact shapes a transactional CAST has to survive;
* **outage** — every instrumented call raises
  :class:`~repro.common.errors.EngineUnavailableError` until
  :meth:`FaultInjector.restore` is called, modelling an engine that is down
  and then comes back.

Instrumentation is per-instance monkeypatching rather than a wrapper object
on purpose: islands and shims route by ``isinstance(engine, RelationalEngine)``
and the scheduler pushes knobs (``parallelism``, ``task_credits``) straight
onto engine attributes, so a proxy class would either break routing or have
to forward every attribute both ways.  Installing bound closures on the
instance keeps the engine's identity, class and attributes intact, and
:meth:`~FaultInjector.uninstall` restores the original methods exactly.

All faults raise *before* the underlying engine method runs, so a retried
call never double-applies an effect — matching the connection-shaped
failures the runtime's retry policy is allowed to retry.
"""

from __future__ import annotations

import math
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from repro.common.errors import (
    EngineUnavailableError,
    SimulatedCrashError,
    TransientEngineError,
)

__all__ = [
    "DEFAULT_FAULTABLE_METHODS",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
]


class InjectedFault(TransientEngineError):
    """A failure raised by the fault-injection harness (always retryable)."""


#: Methods instrumented by default when present on the engine: the engine
#: interface the runtime and CAST pipeline drive, plus the native ``execute``
#: entry point every island calls.
DEFAULT_FAULTABLE_METHODS = (
    "execute",
    "export_relation",
    "export_schema",
    "export_chunks",
    "import_relation",
    "import_chunks",
    "drop_object",
    "rename_object",
)


@dataclass
class FaultSpec:
    """One configured fault: where it applies and how it fires.

    ``methods=None`` applies to every instrumented method.  Counters are
    per-spec and per-method, so ``fail_nth("execute", 3)`` means the third
    *execute* call, regardless of traffic on other methods.
    """

    methods: tuple[str, ...] | None = None
    #: Fail the Nth matching call (1-based), once.
    nth: int | None = None
    #: Fail every Nth matching call (the Nth, 2Nth, ...).
    every: int | None = None
    #: Fail each matching call with this probability (seeded RNG).
    rate: float = 0.0
    #: Sleep this long before delegating (latency injection, never raises).
    latency_s: float = 0.0
    #: For chunk streams: raise after yielding/consuming this many chunks.
    after_chunks: int | None = None
    #: Exception type raised when the fault fires.
    error: type = InjectedFault
    #: Per-method call counts for this spec (internal).
    calls: dict = field(default_factory=dict)

    def matches(self, method: str) -> bool:
        return self.methods is None or method in self.methods


class FaultInjector:
    """Installable, deterministic fault plans for one engine instance.

    Typical use::

        injector = FaultInjector(seed=7)
        injector.fail_nth("execute", 3)           # 3rd execute raises
        injector.fail_mid_stream("export_chunks", after_chunks=2)
        injector.install(engine)
        try:
            ...  # run the workload
        finally:
            injector.uninstall()

    ``injected`` counts faults actually raised per method; ``calls`` counts
    every instrumented call, so tests can assert both "it fired" and "the
    retry went back through the engine".
    """

    def __init__(self, seed: int = 0,
                 methods: Iterable[str] = DEFAULT_FAULTABLE_METHODS,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._methods = tuple(methods)
        self._specs: list[FaultSpec] = []
        self._engine: Any = None
        self._originals: dict[str, Any] = {}
        self._clock = clock
        #: Clock instant the current outage ends (inf = until restore()).
        self._outage_until: float | None = None
        #: Instrumented calls per method (including ones that then failed).
        self.calls: dict[str, int] = {}
        #: Faults raised per method.
        self.injected: dict[str, int] = {}
        #: Armed crash points (journal boundaries), each fires at most once.
        self._crash_points: set[str] = set()
        #: Journals this injector's crash hook is installed on.
        self._journals: list[Any] = []

    # -------------------------------------------------------------- fault plans
    def add(self, spec: FaultSpec) -> "FaultInjector":
        with self._lock:
            self._specs.append(spec)
        return self

    def fail_nth(self, method: str, nth: int,
                 error: type = InjectedFault) -> "FaultInjector":
        """Fail the Nth call to ``method`` (1-based), exactly once."""
        return self.add(FaultSpec(methods=(method,), nth=nth, error=error))

    def fail_every(self, method: str, every: int,
                   error: type = InjectedFault) -> "FaultInjector":
        """Fail every ``every``-th call to ``method``."""
        return self.add(FaultSpec(methods=(method,), every=every, error=error))

    def fail_rate(self, method: str | None, rate: float,
                  error: type = InjectedFault) -> "FaultInjector":
        """Fail a seeded-random fraction of calls (``method=None`` = all)."""
        methods = None if method is None else (method,)
        return self.add(FaultSpec(methods=methods, rate=rate, error=error))

    def add_latency(self, method: str | None, seconds: float) -> "FaultInjector":
        """Sleep before delegating (``method=None`` = every instrumented call)."""
        methods = None if method is None else (method,)
        return self.add(FaultSpec(methods=methods, latency_s=seconds))

    def fail_mid_stream(self, method: str, after_chunks: int,
                        error: type = InjectedFault) -> "FaultInjector":
        """Make a chunk stream die after ``after_chunks`` chunks.

        For ``export_chunks`` the *returned* iterator raises after yielding
        that many chunks; for ``import_chunks`` the *consumed* input stream
        raises once the engine has pulled that many chunks — the partial-
        import shape transactional CAST recovery must clean up.
        """
        if method not in ("export_chunks", "import_chunks"):
            raise ValueError(
                f"mid-stream faults apply to chunk methods, not {method!r}"
            )
        return self.add(
            FaultSpec(methods=(method,), after_chunks=after_chunks, error=error)
        )

    def outage(self, duration_s: float | None = None) -> "FaultInjector":
        """Simulate the engine going down: every call raises while it's out.

        With ``duration_s`` the outage auto-restores once that much time has
        passed on the injector's clock (injectable, so chaos tests can step
        through an outage window without sleeping); without it, the engine
        stays down until :meth:`restore`.
        """
        with self._lock:
            if duration_s is None:
                self._outage_until = math.inf
            else:
                if duration_s <= 0:
                    raise ValueError(f"duration_s must be > 0, got {duration_s}")
                self._outage_until = self._clock() + duration_s
        return self

    def restore(self) -> "FaultInjector":
        """Bring a downed engine back up."""
        with self._lock:
            self._outage_until = None
        return self

    @property
    def is_down(self) -> bool:
        with self._lock:
            return self._down_locked()

    def _down_locked(self) -> bool:
        """Whether an outage is in effect now, expiring timed ones lazily."""
        if self._outage_until is None:
            return False
        if self._clock() >= self._outage_until:
            self._outage_until = None
            return False
        return True

    def fail_rename(self, nth: int = 1,
                    error: type = InjectedFault) -> "FaultInjector":
        """Fail the Nth ``rename_object`` call — the transactional-CAST
        commit step, so the shadow-publish rename itself is chaos-testable."""
        return self.fail_nth("rename_object", nth, error=error)

    def total_injected(self) -> int:
        with self._lock:
            return sum(self.injected.values())

    # ----------------------------------------------------------- crash points
    def crash_at(self, point: str) -> "FaultInjector":
        """Arm a simulated process death at a named journal boundary.

        The write paths announce every protocol boundary to their
        :class:`~repro.runtime.journal.WriteIntentJournal` via
        ``crash_point(name)`` (the sweepable names live in
        ``journal.CRASH_POINTS``).  Once :meth:`attach_journal` has installed
        this injector's hook, the first time an armed boundary is reached a
        :class:`~repro.common.errors.SimulatedCrashError` unwinds the stack
        with no in-process cleanup — the recovery path must then come from
        replaying the journal, as after a real crash.  Each armed point
        fires at most once.
        """
        with self._lock:
            self._crash_points.add(point)
        return self

    def attach_journal(self, journal: Any) -> "FaultInjector":
        """Install this injector's crash hook on ``journal``."""
        journal.set_crash_hook(self._crash_hook)
        with self._lock:
            if journal not in self._journals:
                self._journals.append(journal)
        return self

    def _crash_hook(self, point: str) -> None:
        with self._lock:
            if point not in self._crash_points:
                return
            self._crash_points.discard(point)
            key = f"crash:{point}"
            self.injected[key] = self.injected.get(key, 0) + 1
        raise SimulatedCrashError(f"simulated process crash at {point!r}")

    # ------------------------------------------------------------- installation
    def install(self, engine: Any) -> Any:
        """Instrument ``engine`` in place; returns the engine for chaining."""
        if self._engine is not None:
            raise RuntimeError("injector is already installed; uninstall first")
        self._engine = engine
        for name in self._methods:
            original = getattr(engine, name, None)
            if original is None or not callable(original):
                continue
            self._originals[name] = original
            setattr(engine, name, self._instrumented(name, original))
        return engine

    def uninstall(self) -> None:
        """Restore every instrumented method exactly as it was, and detach
        the crash hook from any attached journals."""
        with self._lock:
            journals, self._journals = self._journals, []
            self._crash_points.clear()
        for journal in journals:
            journal.set_crash_hook(None)
        engine, self._engine = self._engine, None
        originals, self._originals = self._originals, {}
        if engine is None:
            return
        for name in originals:
            # The instrumented closure lives in the instance __dict__ and
            # shadowed the class method; deleting it restores the original
            # lookup (bound originals taken from the class need no re-set).
            try:
                delattr(engine, name)
            except AttributeError:  # pragma: no cover - defensive
                setattr(engine, name, originals[name])

    def __enter__(self) -> "FaultInjector":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.uninstall()

    # ---------------------------------------------------------------- internals
    def _instrumented(self, name: str, original: Any) -> Any:
        def wrapped(*args: Any, **kwargs: Any) -> Any:
            self._before(name)
            if name == "import_chunks":
                args, kwargs = self._wrap_import_stream(name, args, kwargs)
            result = original(*args, **kwargs)
            if name == "export_chunks":
                result = self._flaky_stream(name, result)
            return result

        wrapped.__name__ = f"faulty_{name}"
        wrapped._fault_injector = self  # type: ignore[attr-defined]
        return wrapped

    def _before(self, name: str) -> None:
        """Count the call, apply latency, and raise if any fault fires."""
        latency = 0.0
        error: BaseException | None = None
        with self._lock:
            self.calls[name] = self.calls.get(name, 0) + 1
            if self._down_locked():
                self.injected[name] = self.injected.get(name, 0) + 1
                engine_name = getattr(self._engine, "name", "engine")
                error = EngineUnavailableError(
                    f"engine {engine_name!r} is down (simulated outage)"
                )
            else:
                for spec in self._specs:
                    if not spec.matches(name):
                        continue
                    count = spec.calls.get(name, 0) + 1
                    spec.calls[name] = count
                    latency += spec.latency_s
                    fires = (
                        (spec.nth is not None and count == spec.nth)
                        or (spec.every is not None and count % spec.every == 0)
                        or (spec.rate > 0.0 and self._rng.random() < spec.rate)
                    )
                    if fires and error is None:
                        self.injected[name] = self.injected.get(name, 0) + 1
                        error = spec.error(
                            f"injected fault in {name!r} (call {count})"
                        )
        if latency > 0.0:
            time.sleep(latency)
        if error is not None:
            raise error

    def _stream_spec(self, name: str) -> FaultSpec | None:
        with self._lock:
            for spec in self._specs:
                if spec.matches(name) and spec.after_chunks is not None:
                    return spec
        return None

    def _flaky_stream(self, name: str, chunks: Iterable[Any]) -> Iterator[Any]:
        spec = self._stream_spec(name)
        if spec is None:
            return iter(chunks)

        def generate() -> Iterator[Any]:
            produced = 0
            for chunk in chunks:
                if produced >= spec.after_chunks:
                    with self._lock:
                        self.injected[name] = self.injected.get(name, 0) + 1
                    raise spec.error(
                        f"injected mid-stream fault in {name!r} "
                        f"after {produced} chunks"
                    )
                produced += 1
                yield chunk

        return generate()

    def _wrap_import_stream(self, name: str, args: tuple, kwargs: dict
                            ) -> tuple[tuple, dict]:
        """Swap import_chunks' input stream for one that dies mid-consumption."""
        spec = self._stream_spec(name)
        if spec is None:
            return args, kwargs
        # Signature: import_chunks(name, schema, chunks, **options).
        if "chunks" in kwargs:
            kwargs = dict(kwargs)
            kwargs["chunks"] = self._flaky_stream(name, kwargs["chunks"])
        elif len(args) >= 3:
            args = args[:2] + (self._flaky_stream(name, args[2]),) + args[3:]
        return args, kwargs
