"""The write-ahead intent journal: durable records of in-flight mutations.

A federated write is a multi-step protocol (dispatch a DML statement and
invalidate replicas; import a CAST shadow, rename it live, swap the catalog,
drop the source; promote a replica to primary before re-dispatching a write)
and the middleware process can die between any two steps.  The
:class:`WriteIntentJournal` is the recovery contract for that failure mode:
every write-path protocol *begins* an intent record before doing anything,
*marks* each completed step, and *commits* (or *aborts*) the intent when the
protocol finishes.  :meth:`~repro.runtime.recovery.JournalRecovery.recover`
replays the journal after a restart — committed intents are finished,
incomplete ones rolled back or rolled forward from their last marked step —
so a crash can never lose an acknowledged write or leave a half-applied one
visible.

Records are append-only dicts.  Two backends:

* :class:`MemoryJournalBackend` — an in-process list, the test default.
* :class:`FileJournalBackend` — one JSON line per record, flushed on every
  append (optionally fsync'd), tolerant of a torn trailing line from a crash
  mid-append.  Reopening the same path resumes the sequence numbers, so a
  "restarted" runtime sees the previous process's intents.

Every intent carries an **idempotency token**: the scheduler stamps it onto
the engines a journaled write touched (:meth:`~repro.engines.base.Engine.
note_write_token`), so recovery can tell "the engine applied this write but
the commit record is missing" (roll forward) apart from "the write never
reached the engine" (roll back) without guessing.

Crash simulation hooks into the journal rather than the engines: the write
paths call :meth:`WriteIntentJournal.crash_point` at every protocol boundary,
and :meth:`FaultInjector.crash_at <repro.runtime.faults.FaultInjector.
crash_at>` arms a :class:`~repro.common.errors.SimulatedCrashError` at a
named boundary.  The error derives from ``BaseException`` so ordinary
``except Exception`` cleanup does not run — exactly like a real process
death, which is the point of the sweep.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

__all__ = [
    "CRASH_POINTS",
    "FileJournalBackend",
    "Intent",
    "IntentState",
    "MemoryJournalBackend",
    "WriteIntentJournal",
]

#: Every journal boundary the write paths expose to the crash sweep, by
#: protocol.  ``cast.source_dropped`` only exists on ``drop_source`` casts.
CRASH_POINTS = {
    "dml": ("dml.begin", "dml.dispatched", "dml.applied", "dml.committed"),
    "cast": (
        "cast.begin",
        "cast.imported",
        "cast.renamed",
        "cast.catalog",
        "cast.source_dropped",
        "cast.committed",
    ),
    "promotion": ("promotion.begin", "promotion.catalog", "promotion.committed"),
}


class MemoryJournalBackend:
    """Journal records in an in-process list (the default, for tests)."""

    name = "memory"

    def __init__(self) -> None:
        self._records: list[dict] = []
        self._lock = threading.Lock()

    def append(self, record: dict) -> None:
        with self._lock:
            self._records.append(record)

    def records(self) -> list[dict]:
        with self._lock:
            return list(self._records)

    def close(self) -> None:  # pragma: no cover - symmetry with the file backend
        pass


class FileJournalBackend:
    """Journal records as JSON lines appended to one file.

    Every append is flushed before returning (``fsync=True`` additionally
    forces it to the device, the durable-deployment setting).  Reading back
    skips blank and torn lines — a crash mid-append must not make the whole
    journal unreadable, it just loses the record that was being written,
    which by the write-ahead discipline means the step it described never
    happened as far as recovery is concerned.
    """

    name = "file"

    def __init__(self, path: "str | os.PathLike[str]", fsync: bool = False) -> None:
        self.path = os.fspath(path)
        self._fsync = fsync
        self._lock = threading.Lock()
        self._file = open(self.path, "a", encoding="utf-8")

    def append(self, record: dict) -> None:
        line = json.dumps(record, default=str, separators=(",", ":"))
        with self._lock:
            self._file.write(line + "\n")
            self._file.flush()
            if self._fsync:
                os.fsync(self._file.fileno())

    def records(self) -> list[dict]:
        with self._lock:
            self._file.flush()
        out: list[dict] = []
        with open(self.path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    out.append(json.loads(line))
                except json.JSONDecodeError:
                    continue  # torn trailing write from a crash mid-append
        return out

    def close(self) -> None:
        with self._lock:
            self._file.close()


class Intent:
    """A live handle on one journaled protocol run.

    The protocol calls :meth:`mark` after each completed step and exactly one
    of :meth:`commit` / :meth:`abort` at the end.  The handle never swallows
    the distinction: a crash between steps simply leaves the intent without a
    terminal record, which is what recovery keys on.
    """

    __slots__ = ("journal", "intent_id", "kind", "token")

    def __init__(self, journal: "WriteIntentJournal", intent_id: str,
                 kind: str, token: str) -> None:
        self.journal = journal
        self.intent_id = intent_id
        self.kind = kind
        self.token = token

    def mark(self, step: str, **payload: Any) -> None:
        """Record that one protocol step completed."""
        self.journal._append(self.intent_id, self.kind, "apply", step=step,
                             payload=payload)

    def commit(self, **payload: Any) -> None:
        self.journal.commit_intent(self.intent_id, kind=self.kind, **payload)

    def abort(self, **payload: Any) -> None:
        self.journal.abort_intent(self.intent_id, kind=self.kind, **payload)


@dataclass
class IntentState:
    """One intent as reconstructed from the journal by :meth:`replay`."""

    intent_id: str
    kind: str
    token: str
    payload: dict = field(default_factory=dict)
    #: Completed steps, step name -> the mark's payload.
    steps: dict = field(default_factory=dict)
    committed: bool = False
    aborted: bool = False

    @property
    def complete(self) -> bool:
        return self.committed or self.aborted


class WriteIntentJournal:
    """Append-only begin/apply/commit/abort intent records.

    Thread-safe; one journal serves every write path of a runtime (DML
    dispatches, CAST protocols, primary promotions).  ``crash_hook`` is the
    crash-simulation seam: :meth:`crash_point` calls it with the boundary
    name, and an armed :class:`~repro.runtime.faults.FaultInjector` raises
    :class:`~repro.common.errors.SimulatedCrashError` from it.
    """

    def __init__(self, backend: Any = None, clock: Callable[[], float] = time.time) -> None:
        self.backend = backend if backend is not None else MemoryJournalBackend()
        self._clock = clock
        self._lock = threading.Lock()
        self._crash_hook: Callable[[str], None] | None = None
        existing = self.backend.records()
        self._seq = max((int(r.get("seq", 0)) for r in existing), default=0)
        #: Intents begun, journal-wide (prior process runs included).
        self.intents_written = sum(1 for r in existing if r.get("phase") == "begin")
        self.intents_committed = sum(1 for r in existing if r.get("phase") == "commit")
        self.intents_aborted = sum(1 for r in existing if r.get("phase") == "abort")
        self.records_written = len(existing)

    # --------------------------------------------------------------- recording
    def begin(self, kind: str, **payload: Any) -> Intent:
        """Open a new intent; returns the handle carrying its idempotency token."""
        with self._lock:
            self._seq += 1
            seq = self._seq
            intent_id = f"i{seq:08d}"
            token = f"w{seq:08d}.{kind}"
            self.intents_written += 1
        self._append(intent_id, kind, "begin", token=token, payload=payload,
                     reserved_seq=seq)
        return Intent(self, intent_id, kind, token)

    def commit_intent(self, intent_id: str, kind: str = "", **payload: Any) -> None:
        with self._lock:
            self.intents_committed += 1
        self._append(intent_id, kind, "commit", payload=payload)

    def abort_intent(self, intent_id: str, kind: str = "", **payload: Any) -> None:
        with self._lock:
            self.intents_aborted += 1
        self._append(intent_id, kind, "abort", payload=payload)

    def annotate(self, intent_id: str, step: str, kind: str = "",
                 **payload: Any) -> None:
        """Append an apply record to an existing intent (recovery bookkeeping)."""
        self._append(intent_id, kind, "apply", step=step, payload=payload)

    def _append(self, intent_id: str, kind: str, phase: str,
                step: str | None = None, token: str | None = None,
                payload: dict | None = None,
                reserved_seq: int | None = None) -> None:
        with self._lock:
            if reserved_seq is None:
                self._seq += 1
                reserved_seq = self._seq
            self.records_written += 1
        record = {
            "seq": reserved_seq,
            "intent": intent_id,
            "kind": kind,
            "phase": phase,
            "ts": self._clock(),
        }
        if step is not None:
            record["step"] = step
        if token is not None:
            record["token"] = token
        if payload:
            record["payload"] = payload
        self.backend.append(record)

    # ------------------------------------------------------------------ replay
    def replay(self) -> list[IntentState]:
        """Reconstruct every intent, in begin order, from the record stream."""
        states: dict[str, IntentState] = {}
        for record in sorted(self.backend.records(), key=lambda r: r.get("seq", 0)):
            intent_id = record.get("intent")
            if not intent_id:
                continue
            state = states.get(intent_id)
            phase = record.get("phase")
            if state is None:
                state = states[intent_id] = IntentState(
                    intent_id=intent_id,
                    kind=record.get("kind", ""),
                    token=record.get("token", ""),
                )
            if phase == "begin":
                state.kind = record.get("kind", state.kind)
                state.token = record.get("token", state.token)
                state.payload = dict(record.get("payload") or {})
            elif phase == "apply":
                state.steps[record.get("step", "")] = dict(record.get("payload") or {})
            elif phase == "commit":
                state.committed = True
            elif phase == "abort":
                state.aborted = True
        return list(states.values())

    def open_intents(self) -> list[IntentState]:
        """Intents begun but never committed or aborted — recovery's worklist."""
        return [state for state in self.replay() if not state.complete]

    def has_intents(self) -> bool:
        return self.intents_written > 0

    # ---------------------------------------------------------- crash simulation
    def set_crash_hook(self, hook: Callable[[str], None] | None) -> None:
        """Install (or with None remove) the crash-simulation hook."""
        self._crash_hook = hook

    def crash_point(self, name: str) -> None:
        """A named write-path boundary; an armed hook raises a simulated crash."""
        hook = self._crash_hook
        if hook is not None:
            hook(name)

    # ------------------------------------------------------------------- status
    def describe(self) -> dict:
        return {
            "backend": getattr(self.backend, "name", type(self.backend).__name__),
            "records_written": self.records_written,
            "intents_written": self.intents_written,
            "intents_committed": self.intents_committed,
            "intents_aborted": self.intents_aborted,
            "open_intents": len(self.open_intents()),
        }


def all_crash_points(kinds: Iterable[str] = ("dml", "cast", "promotion")) -> list[str]:
    """The flat crash-point sweep list, for parametrized crash tests."""
    out: list[str] = []
    for kind in kinds:
        out.extend(CRASH_POINTS[kind])
    return out
