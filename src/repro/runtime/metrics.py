"""Runtime counters: throughput, latency percentiles, queue depth, cache hits.

:class:`RuntimeMetrics` is the one place the serving layer's health is
visible.  The scheduler records every submission and completion here; the
snapshot combines them with the admission controller's queue depth and the
cache's hit rate into a single dict a dashboard (or a benchmark assertion)
can read.  The same completions are forwarded to the
:class:`~repro.core.monitor.ExecutionMonitor`, so the
:class:`~repro.core.monitor.MigrationAdvisor` learns engine preferences from
live production traffic rather than only from offline probes.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque


class RuntimeMetrics:
    """Thread-safe counters plus a bounded latency window for percentiles."""

    def __init__(self, window: int = 4096) -> None:
        self._lock = threading.Lock()
        self._latencies: deque[float] = deque(maxlen=window)
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.casts_skipped = 0
        self._first_submit: float | None = None
        self._last_complete: float | None = None

    # --------------------------------------------------------------- recording
    def record_submitted(self) -> None:
        with self._lock:
            self.submitted += 1
            if self._first_submit is None:
                self._first_submit = time.perf_counter()

    def record_completed(self, seconds: float, cached: bool = False) -> None:
        with self._lock:
            self.completed += 1
            if cached:
                self.cache_hits += 1
            else:
                self.cache_misses += 1
            self._latencies.append(seconds)
            self._last_complete = time.perf_counter()

    def record_failed(self) -> None:
        with self._lock:
            self.failed += 1

    def record_casts_skipped(self, count: int) -> None:
        if count:
            with self._lock:
                self.casts_skipped += count

    # -------------------------------------------------------------- statistics
    def latency_percentile(self, percentile: float) -> float | None:
        """Latency at ``percentile`` (0..100) over the recent window, or None."""
        with self._lock:
            samples = sorted(self._latencies)
        if not samples:
            return None
        rank = (percentile / 100.0) * (len(samples) - 1)
        lower = math.floor(rank)
        upper = math.ceil(rank)
        if lower == upper:
            return samples[lower]
        fraction = rank - lower
        return samples[lower] * (1 - fraction) + samples[upper] * fraction

    def throughput(self) -> float:
        """Completed queries per second of wall time, 0.0 before any complete."""
        with self._lock:
            if self._first_submit is None or self._last_complete is None:
                return 0.0
            elapsed = self._last_complete - self._first_submit
            completed = self.completed
        if elapsed <= 0:
            return float(completed)
        return completed / elapsed

    @property
    def cache_hit_rate(self) -> float:
        with self._lock:
            total = self.cache_hits + self.cache_misses
            return self.cache_hits / total if total else 0.0

    def snapshot(
        self,
        queue_depth: int | None = None,
        execution_modes: dict[str, int] | None = None,
        fallback_reasons: dict[str, int] | None = None,
        columns_pruned: int | None = None,
        groupby_paths: dict[str, int] | None = None,
        morsels_executed: int | None = None,
        partitions_spilled: int | None = None,
        peak_build_bytes: int | None = None,
    ) -> dict:
        """Everything a dashboard needs, as one dict.

        ``execution_modes`` is the scheduler-supplied tally of relational
        SELECTs per executor path (vectorized vs row), so a benchmark
        comparing the two modes can read both throughput and path mix from
        one snapshot.  ``fallback_reasons`` tallies batch-pipeline
        fallbacks to the row executor per reason (e.g. "non-equi join"),
        making the remaining scalar gaps visible from the same snapshot.
        ``columns_pruned`` is the optimizer's running total of columns
        dropped below joins/aggregates, and ``groupby_paths`` counts
        grouped aggregations per execution path (streaming vs block vs
        per-row) — together they make the statistics-driven optimizations
        observable from the serving layer.  ``morsels_executed``,
        ``partitions_spilled`` and ``peak_build_bytes`` surface the
        morsel-parallel pipeline: scan batches dispatched, join build
        partitions written to temp files under the memory budget, and the
        largest resident build-side footprint any hash join pinned.
        """
        p50 = self.latency_percentile(50)
        p95 = self.latency_percentile(95)
        p99 = self.latency_percentile(99)
        with self._lock:
            out = {
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "in_flight": self.submitted - self.completed - self.failed,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "casts_skipped": self.casts_skipped,
            }
        out["cache_hit_rate"] = round(self.cache_hit_rate, 4)
        out["throughput_qps"] = round(self.throughput(), 2)
        out["latency_p50_s"] = p50
        out["latency_p95_s"] = p95
        out["latency_p99_s"] = p99
        if queue_depth is not None:
            out["queue_depth"] = queue_depth
        if execution_modes is not None:
            out["relational_execution_modes"] = dict(execution_modes)
        if fallback_reasons is not None:
            out["relational_fallback_reasons"] = dict(fallback_reasons)
        if columns_pruned is not None:
            out["relational_columns_pruned"] = columns_pruned
        if groupby_paths is not None:
            out["relational_groupby_paths"] = dict(groupby_paths)
        if morsels_executed is not None:
            out["relational_morsels_executed"] = morsels_executed
        if partitions_spilled is not None:
            out["relational_partitions_spilled"] = partitions_spilled
        if peak_build_bytes is not None:
            out["relational_peak_build_bytes"] = peak_build_bytes
        return out
