"""Runtime counters: throughput, latency percentiles, queue wait, cache hits.

:class:`RuntimeMetrics` is the one place the serving layer's health is
visible.  The scheduler records every submission and completion here; the
snapshot combines them with everything registered in the attached
:class:`~repro.observability.registry.MetricRegistry` — per-engine executor
counters, admission queue depth, queue-wait histograms — into a single dict
a dashboard (or a benchmark assertion) can read.  Components *register*
their metrics instead of the snapshot call growing a kwarg per counter: the
scheduler installs computed gauges for the relational executor tallies, the
admission controller feeds the queue-wait histogram, and any engine can add
its own namespaced entries through :attr:`registry`.

The same completions are forwarded to the
:class:`~repro.core.monitor.ExecutionMonitor`, so the
:class:`~repro.core.monitor.MigrationAdvisor` learns engine preferences from
live production traffic rather than only from offline probes.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque

from repro.observability.registry import MetricRegistry

#: Default sliding window (seconds) for :meth:`RuntimeMetrics.windowed_throughput`.
DEFAULT_THROUGHPUT_WINDOW_S = 30.0


class RuntimeMetrics:
    """Thread-safe counters plus bounded windows for percentiles/throughput."""

    def __init__(self, window: int = 4096, registry: MetricRegistry | None = None) -> None:
        self._lock = threading.Lock()
        self._latencies: deque[float] = deque(maxlen=window)
        #: Completion timestamps (``perf_counter``) for windowed throughput.
        self._completions: deque[float] = deque(maxlen=window)
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.casts_skipped = 0
        self._first_submit: float | None = None
        self._last_complete: float | None = None
        #: Start of the resettable measurement window (see :meth:`reset_window`).
        self._window_start: float | None = None
        #: The uniform metric surface: components register counters, gauges
        #: and histograms here and :meth:`snapshot` flattens all of them.
        self.registry = registry if registry is not None else MetricRegistry()
        #: Queue-wait observations (seconds spent blocked in admission gates
        #: before execution), kept separate from end-to-end latency so
        #: backpressure is visible on its own axis.
        self._queue_wait = self.registry.histogram("queue_wait_s", window=window)

    # --------------------------------------------------------------- recording
    def record_submitted(self) -> None:
        with self._lock:
            self.submitted += 1
            if self._first_submit is None:
                self._first_submit = time.perf_counter()

    def record_completed(self, seconds: float, cached: bool = False) -> None:
        with self._lock:
            self.completed += 1
            if cached:
                self.cache_hits += 1
            else:
                self.cache_misses += 1
            self._latencies.append(seconds)
            now = time.perf_counter()
            self._last_complete = now
            self._completions.append(now)

    def record_failed(self) -> None:
        with self._lock:
            self.failed += 1

    def record_casts_skipped(self, count: int) -> None:
        if count:
            with self._lock:
                self.casts_skipped += count

    def record_queue_wait(self, seconds: float) -> None:
        """One admission-gate wait (seconds blocked before a slot opened)."""
        self._queue_wait.observe(seconds)

    # -------------------------------------------------------------- statistics
    def latency_percentile(self, percentile: float) -> float | None:
        """Latency at ``percentile`` (0..100) over the recent window, or None."""
        with self._lock:
            samples = sorted(self._latencies)
        if not samples:
            return None
        rank = (percentile / 100.0) * (len(samples) - 1)
        lower = math.floor(rank)
        upper = math.ceil(rank)
        if lower == upper:
            return samples[lower]
        fraction = rank - lower
        return samples[lower] * (1 - fraction) + samples[upper] * fraction

    def throughput(self) -> float:
        """Completed queries per second since the *first submission ever*.

        Long-lived runtimes see this decay across idle gaps; use
        :meth:`windowed_throughput` for the recent rate.
        """
        with self._lock:
            if self._first_submit is None or self._last_complete is None:
                return 0.0
            elapsed = self._last_complete - self._first_submit
            completed = self.completed
        if elapsed <= 0:
            return float(completed)
        return completed / elapsed

    def windowed_throughput(
        self, window_seconds: float = DEFAULT_THROUGHPUT_WINDOW_S
    ) -> float:
        """Completed queries per second over the trailing window.

        The window never reaches past the start of the current measurement
        window (a :meth:`reset_window` call, else the first submission), so
        a young runtime is not under-reported by dividing through idle time
        it never lived.
        """
        now = time.perf_counter()
        with self._lock:
            origin = self._window_start
            if origin is None:
                origin = self._first_submit
            if origin is None and self._completions:
                # Completions recorded without record_submitted (bare-metrics
                # callers): measure from the first completion instead.
                origin = self._completions[0]
            if origin is None:
                return 0.0
            span = min(window_seconds, now - origin)
            if span <= 0:
                return 0.0
            cutoff = now - span
            count = sum(1 for stamp in self._completions if stamp >= cutoff)
        return count / span

    def reset_window(self) -> None:
        """Restart the windowed measurements (throughput window and stamps)."""
        with self._lock:
            self._completions.clear()
            self._window_start = time.perf_counter()

    @property
    def cache_hit_rate(self) -> float:
        with self._lock:
            total = self.cache_hits + self.cache_misses
            return self.cache_hits / total if total else 0.0

    def snapshot(self, queue_depth: int | None = None) -> dict:
        """Everything a dashboard needs, as one dict.

        The core serving counters come first; everything registered in
        :attr:`registry` (engine executor tallies, admission wait
        histograms, queue depth gauges, ...) is flattened on top under its
        registered name.  ``queue_depth`` may still be passed explicitly by
        callers holding a bare ``RuntimeMetrics`` without a wired registry.
        """
        p50 = self.latency_percentile(50)
        p95 = self.latency_percentile(95)
        p99 = self.latency_percentile(99)
        with self._lock:
            out = {
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "in_flight": self.submitted - self.completed - self.failed,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "casts_skipped": self.casts_skipped,
            }
        out["cache_hit_rate"] = round(self.cache_hit_rate, 4)
        out["throughput_qps"] = round(self.throughput(), 2)
        out["throughput_recent_qps"] = round(self.windowed_throughput(), 2)
        out["latency_p50_s"] = p50
        out["latency_p95_s"] = p95
        out["latency_p99_s"] = p99
        out.update(self.registry.snapshot())
        if queue_depth is not None:
            out["queue_depth"] = queue_depth
        return out
