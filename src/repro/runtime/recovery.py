"""Crash recovery: replay the write-ahead intent journal against the polystore.

After the middleware process dies mid-write, the next process holds a journal
full of intents whose terminal record may be missing.  :class:`JournalRecovery`
turns that journal back into a consistent polystore:

* **DML intents** without a commit record are classified by the engines'
  idempotency-token memory — the scheduler stamps each intent's token onto
  the engines right after the dispatch applies, so "token present" means the
  write landed (roll forward: commit the intent) and "token absent" means it
  never reached an engine (roll back: abort the intent; the statement was
  never acknowledged, so dropping it loses nothing).
* **CAST intents** roll back before the commit rename (drop the orphaned
  shadow object; the destination name was never touched) and roll forward
  after it (finish the catalog swap and the source drop the crash
  interrupted — the renamed object is already live on the target, so
  completing the protocol is the only consistent direction).
* **Promotion intents** (write-failover elections) roll back when the
  catalog swap never committed — un-promote the half-elected primary — and,
  once committed, stand: recovery then *resolves the demoted copy*, which
  missed any writes the new primary absorbed, by repairing it with an
  anti-entropy CAST from the new primary (engine healthy) or discarding it
  from the catalog (engine still down).
* **Reconciliation** sweeps the catalog against what the engines actually
  hold: phantom replicas (catalog entry, no object) are dropped, and a
  primary whose engine lost the object is re-pointed at a fresh replica
  that still has it.

Every action recovery takes is itself journaled (terminal records appended
to the replayed intents, fresh intents for reconciliation promotions), so
recovery is idempotent: a second replay — or a crash *during* recovery —
finds the already-resolved intents terminal and does nothing twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.errors import CatalogError, ObjectNotFoundError

__all__ = ["JournalRecovery", "RecoveryReport"]


@dataclass
class RecoveryReport:
    """What one :meth:`JournalRecovery.recover` pass did."""

    #: Incomplete intents finished in the forward direction (committed).
    rolled_forward: int = 0
    #: Incomplete intents undone (aborted; shadows dropped, elections unwound).
    rolled_back: int = 0
    #: Demoted primaries refreshed with an anti-entropy CAST.
    repaired: int = 0
    #: Demoted primaries dropped from the catalog (engine unreachable).
    discarded: int = 0
    #: Catalog entries fixed by the engine-state sweep.
    reconciled: int = 0
    #: Human-readable action log, in order.
    details: list[str] = field(default_factory=list)

    @property
    def intents_replayed(self) -> int:
        """Open intents this pass resolved, either direction."""
        return self.rolled_forward + self.rolled_back

    def note(self, message: str) -> None:
        self.details.append(message)

    def as_dict(self) -> dict:
        return {
            "intents_replayed": self.intents_replayed,
            "rolled_forward": self.rolled_forward,
            "rolled_back": self.rolled_back,
            "repaired": self.repaired,
            "discarded": self.discarded,
            "reconciled": self.reconciled,
            "details": list(self.details),
        }


class JournalRecovery:
    """One recovery pass over a journal, against one polystore.

    ``health`` is an optional ``engine_name -> bool`` probe (the runtime
    wires its breaker state in); engines reported unhealthy are never
    touched — their repairs wait for a later :meth:`recover` call, and
    copies that *must* be resolved now (a demoted primary) are discarded
    from the catalog instead.
    """

    def __init__(self, bigdawg: Any, journal: Any,
                 health: Callable[[str], bool] | None = None) -> None:
        self.bigdawg = bigdawg
        self.journal = journal
        self._health = health

    def healthy(self, engine_name: str) -> bool:
        if self._health is None:
            return True
        try:
            return bool(self._health(engine_name))
        except Exception:  # fail open, like the catalog's probe
            return True

    # ----------------------------------------------------------------- driver
    def recover(self) -> RecoveryReport:
        report = RecoveryReport()
        states = self.journal.replay()
        handlers = {
            "dml": self._recover_dml,
            "cast": self._recover_cast,
            "promotion": self._recover_promotion,
        }
        for state in states:
            if state.complete:
                continue
            handler = handlers.get(state.kind)
            if handler is None:
                self.journal.abort_intent(
                    state.intent_id, kind=state.kind, recovered=True,
                    reason="unknown intent kind",
                )
                report.rolled_back += 1
                report.note(f"{state.intent_id}: unknown kind {state.kind!r}, aborted")
                continue
            handler(state, report)
        # Committed elections whose demoted copy was never repaired or
        # discarded (the crash hit after the commit record, or the demoted
        # engine was down at the previous recovery).
        for state in states:
            if (state.kind == "promotion" and state.committed
                    and "resolved" not in state.steps):
                self._resolve_demoted(state, report)
        self._reconcile(report)
        return report

    # -------------------------------------------------------------------- DML
    def _recover_dml(self, state: Any, report: RecoveryReport) -> None:
        applied = "applied" in state.steps
        if not applied and state.token:
            for engine_name in state.payload.get("engines", []):
                try:
                    engine = self.bigdawg.catalog.engine(engine_name)
                except ObjectNotFoundError:
                    continue
                checker = getattr(engine, "has_write_token", None)
                if checker is not None and checker(state.token):
                    applied = True
                    break
        if applied:
            self.journal.commit_intent(state.intent_id, kind=state.kind, recovered=True)
            report.rolled_forward += 1
            report.note(
                f"{state.intent_id}: dml applied on an engine, rolled forward"
            )
        else:
            self.journal.abort_intent(state.intent_id, kind=state.kind, recovered=True)
            report.rolled_back += 1
            report.note(f"{state.intent_id}: dml never applied, rolled back")

    # ------------------------------------------------------------------- CAST
    def _recover_cast(self, state: Any, report: RecoveryReport) -> None:
        payload = state.payload
        catalog = self.bigdawg.catalog
        obj = payload.get("object", "")
        destination = payload.get("destination", obj)
        shadow = payload.get("shadow", "")
        drop_source = bool(payload.get("drop_source"))
        target_kind = payload.get("target_kind")
        try:
            target = catalog.engine(payload.get("target_engine", ""))
        except ObjectNotFoundError:
            self.journal.abort_intent(
                state.intent_id, kind=state.kind, recovered=True,
                reason="target engine unknown",
            )
            report.rolled_back += 1
            return
        if "renamed" not in state.steps:
            # The commit rename never ran: the destination name is untouched
            # and the only residue is (at most) a partial shadow object.
            if shadow and self.healthy(target.name):
                try:
                    target.drop_object(shadow)
                except ObjectNotFoundError:
                    pass
                except Exception as error:
                    report.note(
                        f"{state.intent_id}: shadow {shadow!r} drop failed "
                        f"({type(error).__name__}); will retry next recovery"
                    )
            self.journal.abort_intent(state.intent_id, kind=state.kind, recovered=True)
            report.rolled_back += 1
            report.note(f"{state.intent_id}: cast rolled back, shadow discarded")
            return
        # Renamed: the finished object is live under the destination name on
        # the target engine — roll forward by finishing the catalog swap and
        # the source drop the crash interrupted.
        if "catalog" not in state.steps:
            if drop_source:
                if destination.lower() == obj.lower():
                    catalog.move_object(obj, target.name, target_kind)
                else:
                    catalog.unregister_object(obj)
                    catalog.register_object(
                        destination, target.name, target_kind or target.kind,
                        replace=True, **(payload.get("properties") or {}),
                    )
            elif destination.lower() == obj.lower():
                catalog.add_replica(destination, target.name, target_kind)
            else:
                catalog.register_object(
                    destination, target.name, target_kind or target.kind,
                    replace=True,
                )
        if drop_source and "source_dropped" not in state.steps:
            try:
                source = catalog.engine(payload.get("source_engine", ""))
                source.drop_object(obj)
            except ObjectNotFoundError:
                pass
            except Exception as error:
                # The catalog no longer references the source copy, so a
                # leftover object on a flaky engine is a harmless leak —
                # note it rather than blocking recovery on it.
                self.journal.annotate(
                    state.intent_id, "source_drop_failed", kind=state.kind,
                    error=type(error).__name__,
                )
                report.note(
                    f"{state.intent_id}: source copy of {obj!r} not dropped "
                    f"({type(error).__name__}); orphaned on its engine"
                )
        self.journal.commit_intent(state.intent_id, kind=state.kind, recovered=True)
        report.rolled_forward += 1
        report.note(f"{state.intent_id}: cast rolled forward to completion")

    # -------------------------------------------------------------- promotions
    def _recover_promotion(self, state: Any, report: RecoveryReport) -> None:
        payload = state.payload
        catalog = self.bigdawg.catalog
        obj = payload.get("object", "")
        from_engine = payload.get("from_engine", "")
        to_engine = payload.get("to_engine", "")
        if "catalog" in state.steps:
            # Half-elected: the catalog swap landed but the election never
            # committed, so no write can have been re-dispatched yet (the
            # commit record precedes the re-dispatch).  Un-promote — the
            # old primary's copy is still fresh.
            try:
                if catalog.locate(obj).engine_name == to_engine:
                    catalog.promote_primary(obj, from_engine)
                    report.note(
                        f"{state.intent_id}: un-promoted half-elected primary "
                        f"of {obj!r} back to {from_engine!r}"
                    )
            except (ObjectNotFoundError, CatalogError) as error:
                report.note(
                    f"{state.intent_id}: could not un-promote {obj!r} "
                    f"({type(error).__name__})"
                )
        self.journal.abort_intent(state.intent_id, kind=state.kind, recovered=True)
        report.rolled_back += 1

    def _resolve_demoted(self, state: Any, report: RecoveryReport) -> None:
        """Repair or discard the primary a committed election demoted."""
        payload = state.payload
        catalog = self.bigdawg.catalog
        obj = payload.get("object", "")
        from_engine = payload.get("from_engine", "")
        to_engine = payload.get("to_engine", "")

        def resolved(outcome: str) -> None:
            self.journal.annotate(
                state.intent_id, "resolved", kind=state.kind, outcome=outcome
            )
            report.note(f"{state.intent_id}: demoted {from_engine!r} {outcome}")

        try:
            primary = catalog.locate(obj)
        except ObjectNotFoundError:
            resolved("object_gone")
            return
        if primary.engine_name != to_engine:
            # A later election or write moved the primary again; that
            # intent owns the current demotion.
            resolved("superseded")
            return
        demoted = {
            loc.engine_name: loc for loc in catalog.replicas(obj)
        }.get(from_engine)
        if demoted is None:
            resolved("gone")
            return
        if demoted.version == catalog.content_version(obj):
            # No write landed after the election — the demoted copy is
            # still byte-identical to the primary.
            resolved("fresh")
            return
        if self.healthy(from_engine):
            try:
                # Anti-entropy CAST: re-copy the object from the new
                # primary over the stale demoted copy, re-registering it
                # as a fresh replica.
                self.bigdawg.migrator.cast(obj, from_engine)
                report.repaired += 1
                resolved("repaired")
                return
            except Exception as error:
                report.note(
                    f"{state.intent_id}: repair cast of {obj!r} to "
                    f"{from_engine!r} failed ({type(error).__name__})"
                )
        catalog.drop_replica(obj, from_engine)
        report.discarded += 1
        resolved("discarded")

    # ---------------------------------------------------------- reconciliation
    def _reconcile(self, report: RecoveryReport) -> None:
        """Sweep the catalog against what the engines actually hold."""
        catalog = self.bigdawg.catalog
        for location in list(catalog.objects()):
            if location.properties.get("temporary"):
                continue
            name = location.name
            for replica in catalog.replicas(name):
                if not self.healthy(replica.engine_name):
                    continue
                if self._engine_has(replica.engine_name, name) is False:
                    catalog.drop_replica(name, replica.engine_name)
                    report.reconciled += 1
                    report.note(
                        f"reconcile: dropped phantom replica of {name!r} "
                        f"on {replica.engine_name!r}"
                    )
            if not self.healthy(location.engine_name):
                continue
            if self._engine_has(location.engine_name, name) is not False:
                continue
            # The primary's engine lost the object: re-point the catalog at
            # a fresh replica that still has it (journaled like any other
            # election, pre-resolved since the old copy is simply gone).
            current = catalog.content_version(name)
            for replica in catalog.replicas(name):
                if (replica.version != current
                        or not self.healthy(replica.engine_name)
                        or self._engine_has(replica.engine_name, name) is not True):
                    continue
                intent = self.journal.begin(
                    "promotion", object=name,
                    from_engine=location.engine_name,
                    to_engine=replica.engine_name, step="reconcile",
                )
                try:
                    catalog.promote_primary(name, replica.engine_name)
                except CatalogError as error:
                    intent.abort(error=type(error).__name__)
                    continue
                intent.mark("catalog")
                intent.commit()
                self.journal.annotate(
                    intent.intent_id, "resolved", kind="promotion",
                    outcome="reconciled",
                )
                catalog.drop_replica(name, location.engine_name)
                report.reconciled += 1
                report.note(
                    f"reconcile: promoted {replica.engine_name!r} to primary "
                    f"of {name!r} (old primary lost the object)"
                )
                break
        catalog.invalidate_schema()

    def _engine_has(self, engine_name: str, object_name: str) -> bool | None:
        """Whether an engine holds an object; None when it cannot be asked."""
        try:
            return bool(self.bigdawg.catalog.engine(engine_name).has_object(object_name))
        except Exception:
            return None
