"""Retry with exponential backoff and per-engine circuit breakers.

The robustness layer between the scheduler and the engines.  Two mechanisms,
composed by :class:`EngineResilience`:

* :class:`RetryPolicy` — bounded attempts with exponential backoff plus
  seeded jitter.  Only errors whose ``retryable`` flag is set (the
  :class:`~repro.common.errors.TransientEngineError` family: dropped
  connections, injected faults, simulated outages) are retried; semantic
  errors fail immediately.  Backoff sleeps never run past a query deadline.
* :class:`CircuitBreaker` — one per engine, the classic three-state machine.
  ``closed`` counts consecutive transient failures and trips ``open`` at a
  threshold; ``open`` rejects instantly (the scheduler checks breakers
  *before* admission, so queries fail fast instead of queueing behind a dead
  engine) until a cooldown elapses; then ``half_open`` admits a bounded
  number of probe calls — success closes the breaker, failure re-opens it
  and restarts the cooldown.

Observability is built in rather than bolted on: ``bind_registry`` registers
retry/breaker counters and a per-engine state gauge into the runtime's
:class:`~repro.observability.registry.MetricRegistry`, and every breaker
transition plus every retry backoff is recorded as a span through the
ambient tracer, so a chaos run's timeline shows exactly when each engine
tripped, was probed and recovered.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Iterable

from repro.common.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    SimulatedCrashError,
)
from repro.observability.registry import MetricRegistry
from repro.observability.tracing import get_tracer

__all__ = [
    "BREAKER_STATES",
    "CircuitBreaker",
    "EngineResilience",
    "RetryBudget",
    "RetryPolicy",
]

#: The three breaker states, in trip order.
BREAKER_STATES = ("closed", "open", "half_open")


class RetryPolicy:
    """Exponential backoff with deterministic, seeded jitter.

    ``backoff(attempt)`` for attempt 1, 2, ... returns
    ``base * multiplier**(attempt-1)`` capped at ``max_backoff_s``, then
    stretched by a jitter factor drawn uniformly from
    ``[1 - jitter, 1 + jitter]`` — seeded, so a test run's exact sleep
    sequence is reproducible.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_backoff_s: float = 0.05,
        multiplier: float = 2.0,
        max_backoff_s: float = 2.0,
        jitter: float = 0.5,
        seed: int = 0,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self.max_attempts = max_attempts
        self.base_backoff_s = base_backoff_s
        self.multiplier = multiplier
        self.max_backoff_s = max_backoff_s
        self.jitter = jitter
        self._rng = random.Random(seed)
        self._rng_lock = threading.Lock()

    def backoff(self, attempt: int) -> float:
        """Seconds to sleep after failed attempt number ``attempt`` (1-based)."""
        base = min(
            self.base_backoff_s * (self.multiplier ** max(0, attempt - 1)),
            self.max_backoff_s,
        )
        if self.jitter == 0.0:
            return base
        with self._rng_lock:
            factor = 1.0 + self._rng.uniform(-self.jitter, self.jitter)
        return base * factor

    def attempts_within(self, budget_s: float) -> int:
        """How many attempts fit inside ``budget_s`` of remaining deadline.

        Counts worst-case (jitter-stretched) backoff between attempts, so a
        caller that caps a re-dispatch at this many attempts can never sleep
        its way past the deadline.  At least one attempt is always allowed —
        the caller has already checked the deadline has not passed — and the
        policy's own ``max_attempts`` is the ceiling.
        """
        attempts = 1
        spent = 0.0
        while attempts < self.max_attempts:
            base = min(
                self.base_backoff_s * (self.multiplier ** (attempts - 1)),
                self.max_backoff_s,
            )
            worst = base * (1.0 + self.jitter)
            if spent + worst > budget_s:
                break
            spent += worst
            attempts += 1
        return attempts

    @staticmethod
    def is_retryable(error: BaseException) -> bool:
        return bool(getattr(error, "retryable", False))

    def describe(self) -> dict:
        return {
            "max_attempts": self.max_attempts,
            "base_backoff_s": self.base_backoff_s,
            "multiplier": self.multiplier,
            "max_backoff_s": self.max_backoff_s,
            "jitter": self.jitter,
        }


class RetryBudget:
    """An adaptive per-engine token bucket gating retries.

    Every retry spends one token; every *successful* call refills
    ``refill_per_success`` tokens (capped at ``capacity``).  Against a
    healthy engine the bucket hovers near full and retries are free; against
    a flapping engine — failing often enough that refills cannot keep up —
    the bucket drains and further retries are denied, so the runtime sheds
    its own retry load instead of amplifying the overload with synchronized
    re-attempts.  Failing *first* attempts are never gated (the breaker owns
    that decision); only the additional, self-inflicted traffic is.
    """

    def __init__(self, capacity: float = 32.0, refill_per_success: float = 0.5) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        if refill_per_success < 0:
            raise ValueError(
                f"refill_per_success must be >= 0, got {refill_per_success}"
            )
        self.capacity = float(capacity)
        self.refill_per_success = float(refill_per_success)
        self._tokens = float(capacity)
        self._lock = threading.Lock()
        self.denied_total = 0

    @property
    def tokens(self) -> float:
        with self._lock:
            return self._tokens

    def try_spend(self, cost: float = 1.0) -> bool:
        """Take ``cost`` tokens if available; False (and no change) if not."""
        with self._lock:
            if self._tokens >= cost:
                self._tokens -= cost
                return True
            self.denied_total += 1
            return False

    def refund(self, cost: float = 1.0) -> None:
        """Return tokens spent by a multi-engine claim another bucket denied."""
        with self._lock:
            self._tokens = min(self.capacity, self._tokens + cost)

    def record_success(self) -> None:
        with self._lock:
            self._tokens = min(self.capacity, self._tokens + self.refill_per_success)

    def describe(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "tokens": round(self._tokens, 3),
                "refill_per_success": self.refill_per_success,
                "denied_total": self.denied_total,
            }


class CircuitBreaker:
    """Closed / open / half-open breaker for one engine.

    ``clock`` is injectable so tests can step time instead of sleeping
    through cooldowns.  ``on_transition(engine, old, new)`` fires outside
    the lock on every state change.
    """

    def __init__(
        self,
        engine_name: str,
        failure_threshold: int = 5,
        cooldown_s: float = 5.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Callable[[str, str, str], None] | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.engine_name = engine_name
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._probes_in_flight = 0
        # Counters for the metrics surface.
        self.opened_total = 0
        self.closed_total = 0
        self.rejections = 0
        self.transitions: list[tuple[str, str]] = []

    # ---------------------------------------------------------------- queries
    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open_locked()
            return self._state

    def retry_after_s(self) -> float | None:
        """Cooldown remaining while open, else None."""
        with self._lock:
            if self._state != "open" or self._opened_at is None:
                return None
            return max(0.0, self.cooldown_s - (self._clock() - self._opened_at))

    # ------------------------------------------------------------- transitions
    def allow(self) -> bool:
        """Whether a call may be dispatched now.

        In ``half_open`` this *claims* a probe slot when it returns True;
        the caller must report the outcome via :meth:`record_success` or
        :meth:`record_failure` to release it.
        """
        fired: tuple[str, str] | None = None
        with self._lock:
            fired = self._maybe_half_open_locked()
            if self._state == "closed":
                allowed = True
            elif self._state == "open":
                self.rejections += 1
                allowed = False
            else:  # half_open: bounded probe traffic only
                if self._probes_in_flight < self.half_open_probes:
                    self._probes_in_flight += 1
                    allowed = True
                else:
                    self.rejections += 1
                    allowed = False
        self._notify(fired)
        return allowed

    def record_success(self) -> None:
        fired: tuple[str, str] | None = None
        with self._lock:
            self._consecutive_failures = 0
            if self._state == "half_open":
                self._probes_in_flight = 0
                fired = self._transition_locked("closed")
                self.closed_total += 1
        self._notify(fired)

    def release_probe(self) -> None:
        """Release a probe slot claimed by :meth:`allow` without an outcome.

        Used when a multi-engine step claimed this breaker's probe but was
        rejected by a *different* engine's breaker before dispatching — the
        probe never ran, so neither success nor failure should be recorded.
        """
        with self._lock:
            if self._state == "half_open" and self._probes_in_flight > 0:
                self._probes_in_flight -= 1

    def record_failure(self) -> None:
        fired: tuple[str, str] | None = None
        with self._lock:
            if self._state == "half_open":
                # The probe failed: straight back to open, cooldown restarts.
                self._probes_in_flight = 0
                self._opened_at = self._clock()
                fired = self._transition_locked("open")
                self.opened_total += 1
            elif self._state == "closed":
                self._consecutive_failures += 1
                if self._consecutive_failures >= self.failure_threshold:
                    self._opened_at = self._clock()
                    fired = self._transition_locked("open")
                    self.opened_total += 1
        self._notify(fired)

    def _maybe_half_open_locked(self) -> tuple[str, str] | None:
        if (
            self._state == "open"
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self.cooldown_s
        ):
            self._probes_in_flight = 0
            return self._transition_locked("half_open")
        return None

    def _transition_locked(self, new_state: str) -> tuple[str, str]:
        old, self._state = self._state, new_state
        self.transitions.append((old, new_state))
        return (old, new_state)

    def _notify(self, fired: tuple[str, str] | None) -> None:
        if fired is not None and self._on_transition is not None:
            self._on_transition(self.engine_name, fired[0], fired[1])

    def describe(self) -> dict:
        with self._lock:
            return {
                "engine": self.engine_name,
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "cooldown_s": self.cooldown_s,
                "opened_total": self.opened_total,
                "closed_total": self.closed_total,
                "rejections": self.rejections,
                "transitions": list(self.transitions),
            }


class EngineResilience:
    """Per-engine breakers plus one retry policy, driving a callable.

    :meth:`run` is the scheduler's entry point: it checks every touched
    engine's breaker (fail fast with :class:`CircuitOpenError`), runs the
    step, retries transient failures with backoff, and feeds outcomes back
    into the breakers.  A failure in a multi-engine step counts against
    every engine the step touched — the runtime cannot attribute a
    mid-stream CAST failure to one side, and over-counting merely probes an
    innocent engine sooner.

    ``sleep`` and ``clock`` are injectable so chaos tests run without wall
    time.
    """

    def __init__(
        self,
        retry: RetryPolicy | None = None,
        failure_threshold: int = 5,
        cooldown_s: float = 5.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        retry_budget_capacity: float = 32.0,
        retry_budget_refill: float = 0.5,
    ) -> None:
        self.retry = retry if retry is not None else RetryPolicy()
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.half_open_probes = half_open_probes
        self.retry_budget_capacity = retry_budget_capacity
        self.retry_budget_refill = retry_budget_refill
        self._clock = clock
        self._sleep = sleep
        self._breakers: dict[str, CircuitBreaker] = {}
        self._budgets: dict[str, RetryBudget] = {}
        self._lock = threading.Lock()
        self._registry: MetricRegistry | None = None

    # ------------------------------------------------------------- registration
    def bind_registry(self, registry: MetricRegistry) -> None:
        """Register retry/breaker metrics into the runtime's registry."""
        self._registry = registry
        registry.counter("retry_attempts")
        registry.counter("retries_exhausted")
        registry.counter("retry_budget_denied")
        registry.counter("breaker_open_total")
        registry.counter("breaker_close_total")
        registry.counter("breaker_rejections")
        registry.register_gauge("breaker_states", self.states)
        registry.register_gauge("retry_budget_tokens", self.budget_tokens)

    def now(self) -> float:
        """The resilience clock — deadlines are instants on this clock."""
        return self._clock()

    def _count(self, name: str, amount: int = 1) -> None:
        if self._registry is not None:
            self._registry.counter(name).inc(amount)

    def breaker(self, engine_name: str) -> CircuitBreaker:
        key = engine_name.lower()
        with self._lock:
            if key not in self._breakers:
                self._breakers[key] = CircuitBreaker(
                    key,
                    failure_threshold=self.failure_threshold,
                    cooldown_s=self.cooldown_s,
                    half_open_probes=self.half_open_probes,
                    clock=self._clock,
                    on_transition=self._record_transition,
                )
            return self._breakers[key]

    def _record_transition(self, engine: str, old: str, new: str) -> None:
        """Count the transition and drop a zero-length span on the timeline."""
        if new == "open":
            self._count("breaker_open_total")
        elif new == "closed":
            self._count("breaker_close_total")
        tracer = get_tracer()
        if tracer.enabled:
            tracer.record(
                "breaker_transition", start_s=time.time(), duration_s=0.0,
                kind="resilience", engine=engine, from_state=old, to_state=new,
            )

    def budget(self, engine_name: str) -> RetryBudget:
        key = engine_name.lower()
        with self._lock:
            if key not in self._budgets:
                self._budgets[key] = RetryBudget(
                    capacity=self.retry_budget_capacity,
                    refill_per_success=self.retry_budget_refill,
                )
            return self._budgets[key]

    def budget_tokens(self) -> dict[str, float]:
        """Per-engine retry-budget fill (the ``retry_budget_tokens`` gauge)."""
        with self._lock:
            budgets = dict(self._budgets)
        return {name: round(b.tokens, 3) for name, b in budgets.items()}

    def states(self) -> dict[str, str]:
        """Per-engine breaker state (the ``breaker_states`` gauge)."""
        with self._lock:
            breakers = list(self._breakers.values())
        return {b.engine_name: b.state for b in breakers}

    def engine_is_available(self, engine_name: str) -> bool:
        """Whether an engine's breaker currently admits traffic.

        The catalog's read-routing health probe: consults only *existing*
        breakers (probing must not materialize breaker state for engines the
        runtime never dispatched to) and treats ``half_open`` as available —
        probe traffic is how a recovering engine proves itself.
        """
        with self._lock:
            breaker = self._breakers.get(engine_name.lower())
        return breaker is None or breaker.state != "open"

    def open_engines(self, engine_names: Iterable[str]) -> set[str]:
        """The subset of ``engine_names`` whose breaker is currently open."""
        return {
            name.lower() for name in engine_names
            if not self.engine_is_available(name)
        }

    def describe(self) -> dict:
        with self._lock:
            breakers = list(self._breakers.values())
        return {
            "retry": self.retry.describe(),
            "breakers": {b.engine_name: b.describe() for b in breakers},
        }

    # --------------------------------------------------------------- execution
    def run(self, engine_names: Iterable[str], fn: Callable[[], object],
            deadline: float | None = None, description: str = "",
            max_attempts: int | None = None) -> object:
        """Run ``fn`` under breaker protection with transient-failure retries.

        ``deadline`` is an absolute ``clock()`` instant; it is checked
        before every attempt and bounds every backoff sleep, so a retrying
        step can never overshoot its query's budget by more than one
        engine call.  ``max_attempts`` tightens (never loosens) the retry
        policy's attempt ceiling for this one call — the failover path uses
        :meth:`RetryPolicy.attempts_within` to carve a re-dispatch's retries
        out of the deadline budget already spent on the failed primary.
        """
        engines = sorted({name.lower() for name in engine_names})
        ceiling = self.retry.max_attempts
        if max_attempts is not None:
            ceiling = max(1, min(ceiling, max_attempts))
        attempt = 0
        while True:
            attempt += 1
            self._check_deadline(deadline, description)
            claimed = self._claim_breakers(engines)
            try:
                result = fn()
            except BaseException as error:  # noqa: BLE001 - classified below
                if isinstance(error, SimulatedCrashError):
                    # A (simulated) process death: no breaker accounting, no
                    # retry — the stack unwinds as if the process were gone.
                    raise
                # Only transient (connection-shaped) failures count against
                # breakers: a semantic error is the engine *responding*, which
                # is evidence of health, not of an outage.
                transient = self.retry.is_retryable(error)
                self._release_breakers(claimed, success=not transient)
                if not transient:
                    raise
                if attempt >= ceiling:
                    self._count("retries_exhausted")
                    raise
                if not self._spend_retry_budget(engines):
                    # The flapping engine drained its budget: shed the retry
                    # and surface the original failure instead of piling
                    # synchronized re-attempts onto an overloaded engine.
                    self._count("retry_budget_denied")
                    raise
                delay = self.retry.backoff(attempt)
                if deadline is not None:
                    remaining = deadline - self._clock()
                    if remaining <= 0:
                        raise
                    delay = min(delay, remaining)
                self._count("retry_attempts")
                self._trace_retry(attempt, delay, error, description)
                if delay > 0:
                    self._sleep(delay)
            else:
                self._release_breakers(claimed, success=True)
                for name in engines:
                    self.budget(name).record_success()
                return result

    def _spend_retry_budget(self, engines: list[str]) -> bool:
        """Take one retry token from every touched engine, all or nothing."""
        spent: list[RetryBudget] = []
        for name in engines:
            bucket = self.budget(name)
            if not bucket.try_spend():
                for earlier in spent:
                    earlier.refund()
                return False
            spent.append(bucket)
        return True

    def _claim_breakers(self, engines: list[str]) -> list[CircuitBreaker]:
        """Check every engine's breaker; raise fast if any refuses."""
        claimed: list[CircuitBreaker] = []
        for name in engines:
            breaker = self.breaker(name)
            if not breaker.allow():
                self._count("breaker_rejections")
                # Half-open probe slots already claimed for earlier engines
                # must be released, or a rejected multi-engine step would
                # leak the probe and wedge those breakers half-open forever.
                for earlier in claimed:
                    earlier.release_probe()
                raise CircuitOpenError(
                    f"engine {name!r} circuit breaker is "
                    f"{breaker.state}; refusing dispatch",
                    engine=name,
                    retry_after_s=breaker.retry_after_s(),
                )
            claimed.append(breaker)
        return claimed

    @staticmethod
    def _release_breakers(claimed: list[CircuitBreaker], success: bool) -> None:
        for breaker in claimed:
            if success:
                breaker.record_success()
            else:
                breaker.record_failure()

    def _check_deadline(self, deadline: float | None, description: str) -> None:
        if deadline is not None and self._clock() >= deadline:
            raise DeadlineExceededError(
                f"query deadline exceeded before {description or 'step'}"
            )

    @staticmethod
    def _trace_retry(attempt: int, delay: float, error: BaseException,
                     description: str) -> None:
        tracer = get_tracer()
        if tracer.enabled:
            tracer.record(
                "retry", start_s=time.time(), duration_s=delay,
                kind="resilience", attempt=attempt,
                error=type(error).__name__, step=description,
            )
