"""The polystore runtime: a worker pool serving many clients concurrently.

:class:`PolystoreRuntime` is the layer between clients and
:class:`~repro.core.bigdawg.BigDawg`.  Each submitted query flows through:

1. **Result cache** — a fingerprint-verified lookup; hits return immediately
   and never touch an engine.
2. **Planning** — scoped queries become a :class:`~repro.core.query.planner.QueryPlan`
   whose dependency sets say which steps may overlap.
3. **Scheduling** — plan steps run in dependency waves; steps in the same
   wave (independent CASTs, unrelated WITH-binding materializations) run on
   parallel threads.
4. **Admission** — before running, every step is admitted by the gates of the
   engines it touches, so no engine sees more concurrency than its slot
   budget and a slow scan on one engine cannot starve the others.
5. **Accounting** — latency lands in :class:`~repro.runtime.metrics.RuntimeMetrics`
   and in the :class:`~repro.core.monitor.ExecutionMonitor`, where the
   migration advisor mines it.

``engine_latency`` emulates the network hop to an out-of-process engine
(every engine here is in-process, which a real BigDAWG deployment is not):
each admitted dispatch sleeps that long while holding its slots.  Benchmarks
use it to study scheduling under realistic service times; it defaults to 0.
"""

from __future__ import annotations

import itertools
import re
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import ExitStack
from typing import Sequence

from repro.common.cancellation import CancellationToken, cancel_scope, check_cancelled
from repro.common.errors import (
    BigDawgError,
    CatalogError,
    CircuitOpenError,
    DeadlineExceededError,
    ObjectNotFoundError,
    PlanningError,
    SimulatedCrashError,
    TransientEngineError,
)
from repro.common.parallel import WorkerCredits, resolve_parallelism
from repro.common.schema import Relation
from repro.core.bigdawg import BigDawg
from repro.core.query.planner import BindingStep, CastStep, PlanExecution, QueryPlan
from repro.observability.profile import SlowQueryLog
from repro.observability.tracing import (
    Tracer,
    capture_context,
    get_tracer,
    tracer_scope,
    with_context,
)
from repro.runtime.admission import AdmissionController
from repro.runtime.cache import ResultCache
from repro.runtime.journal import WriteIntentJournal
from repro.runtime.metrics import RuntimeMetrics
from repro.runtime.recovery import JournalRecovery, RecoveryReport
from repro.runtime.resilience import EngineResilience

_IDENTIFIER_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")

#: Statement prefixes the islands route to the primary copy (mutations).
_WRITE_PREFIXES = ("insert", "update", "delete", "drop", "create", "alter")


def _is_write_statement(text: str) -> bool:
    return text.strip().lower().startswith(_WRITE_PREFIXES)


def _span_text(query: str, limit: int = 200) -> str:
    """Query text trimmed for span attributes (traces stay bounded)."""
    text = " ".join(query.split())
    return text if len(text) <= limit else text[: limit - 3] + "..."

#: Process-wide session ids: several runtimes may serve one polystore, and
#: session-scoped temp names (``name__s<id>``) must never collide across them.
_SESSION_IDS = itertools.count(1)

#: Installed as the thread-scoped tracer for queries that lose the 1-in-N
#: sampling draw, so their whole call tree records nothing.
_UNSAMPLED_TRACER = Tracer(enabled=False)


class PolystoreRuntime:
    """Concurrent serving layer over one :class:`BigDawg` polystore."""

    def __init__(
        self,
        bigdawg: BigDawg,
        workers: int = 4,
        slots_per_engine: int = 2,
        admission_timeout: float | None = 30.0,
        engine_slots: dict[str, int] | None = None,
        cache_capacity: int = 256,
        engine_latency: float = 0.0,
        parallel_steps: bool = True,
        parallelism: int | str = "auto",
        resilience: EngineResilience | None = None,
        serve_stale_on_open: bool = False,
        default_deadline_s: float | None = None,
        journal: WriteIntentJournal | None = None,
        recover_on_start: bool = True,
    ) -> None:
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        self.bigdawg = bigdawg
        self.workers = workers
        self.admission = AdmissionController(
            slots_per_engine=slots_per_engine, timeout=admission_timeout, slots=engine_slots
        )
        #: Retry/backoff + per-engine circuit breakers around every dispatch.
        self.resilience = resilience if resilience is not None else EngineResilience()
        #: Serve a last-known-good cached result (flagged stale) when a
        #: breaker refuses a query — opt-in degraded reads over hard errors.
        self.serve_stale_on_open = serve_stale_on_open
        #: Applied to queries submitted without an explicit ``deadline_s``.
        self.default_deadline_s = default_deadline_s
        self.cache = ResultCache(
            bigdawg.catalog, capacity=cache_capacity, keep_stale=serve_stale_on_open
        )
        self.metrics = RuntimeMetrics()
        #: Queries slower than ``slow_queries.threshold_s`` land here (off
        #: until a threshold is set).
        self.slow_queries = SlowQueryLog()
        # Queue-wait flows from the gates into the metrics histogram, and
        # every aggregated engine counter becomes a computed gauge in the
        # registry — one uniform snapshot instead of per-counter kwargs.
        self.admission.wait_sink = self.metrics.record_queue_wait
        registry = self.metrics.registry
        self.resilience.bind_registry(registry)
        registry.counter("stale_served")
        registry.counter("failover_total")
        # Durable-write surface: the write-ahead intent journal covers DML
        # dispatches, CAST protocols and primary promotions; the migrator
        # gets the journal injected (duck-typed — core/ never imports
        # runtime/) so casts journal themselves wherever they are triggered.
        self.journal = journal if journal is not None else WriteIntentJournal()
        bigdawg.migrator.journal = self.journal
        #: The report of the most recent :meth:`recover` run, if any.
        self.last_recovery: RecoveryReport | None = None
        registry.counter("writes_failed_over")
        registry.counter("intents_replayed")
        registry.counter("recovery_rollbacks")
        registry.register_gauge(
            "intents_written", lambda: self.journal.intents_written
        )
        registry.register_gauge(
            "journal_open_intents", lambda: len(self.journal.open_intents())
        )
        # Per-engine degraded-mode accounting: which engine's outage caused
        # stale serves / failovers, surfaced as dict-valued gauges.
        self._degraded_lock = threading.Lock()
        self._stale_served_by_engine: dict[str, int] = {}
        self._failover_by_engine: dict[str, int] = {}
        registry.register_gauge(
            "stale_served_by_engine",
            lambda: dict(self._stale_served_by_engine),
        )
        registry.register_gauge(
            "failover_by_engine", lambda: dict(self._failover_by_engine)
        )
        # Replica-aware read routing avoids engines whose breaker is open:
        # the catalog asks this probe before choosing the copy to read.
        bigdawg.catalog.set_health_probe(self.resilience.engine_is_available)
        registry.register_gauge("queue_depth", self.admission.queue_depth)
        registry.register_gauge(
            "admission_wait_s_total", lambda: round(self.admission.queue_wait_seconds(), 6)
        )
        registry.register_gauge(
            "admission_held_s_total", lambda: round(self.admission.held_seconds(), 6)
        )
        registry.register_gauge(
            "relational_execution_modes", self.relational_execution_modes
        )
        registry.register_gauge(
            "relational_fallback_reasons", self.relational_fallback_reasons
        )
        registry.register_gauge("relational_columns_pruned", self.relational_columns_pruned)
        registry.register_gauge("relational_groupby_paths", self.relational_groupby_paths)
        registry.register_gauge(
            "relational_morsels_executed", self.relational_morsels_executed
        )
        registry.register_gauge(
            "relational_partitions_spilled", self.relational_partitions_spilled
        )
        registry.register_gauge(
            "relational_peak_build_bytes", self.relational_peak_build_bytes
        )
        self.engine_latency = engine_latency
        self.parallel_steps = parallel_steps
        # Intra-query morsel parallelism: every relational engine gets the
        # knob plus one shared fleet-wide extra-worker budget, so a single
        # big join cannot grab `workers x parallelism` threads under load.
        self.parallelism = parallelism
        self.task_credits = WorkerCredits(max(0, resolve_parallelism(parallelism) - 1) * workers)
        self.set_relational_parallelism(parallelism)
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="bigdawg-runtime"
        )
        self._closed = False
        # A journal carrying intents from a previous process run means that
        # process died (or was killed) mid-write: replay it before serving,
        # so no query can observe a half-applied write.  A fresh (empty)
        # journal makes this a no-op.
        if recover_on_start and self.journal.has_intents():
            self.recover()

    # ------------------------------------------------------------- client API
    def submit(self, query: str, cast_method: str = "binary",
               chunk_size: int | None = None, use_cache: bool = True,
               deadline_s: float | None = None) -> "Future[Relation]":
        """Enqueue one query; returns a future resolving to its Relation.

        ``deadline_s`` is a per-query wall budget: the deadline is checked
        at every plan-step boundary, bounds retry backoff, and rides a
        :class:`~repro.common.cancellation.CancellationToken` into the
        engines, where it is polled at every batch/chunk boundary — a query
        that overruns fails with
        :class:`~repro.common.errors.DeadlineExceededError` within one
        batch of the deadline instead of running arbitrarily long.
        Defaults to the runtime's ``default_deadline_s`` (None = no
        deadline).

        The returned future carries the token as ``cancellation_token``: a
        client that no longer wants the answer calls ``.cancel()`` on it
        and the in-flight query unwinds at its next batch boundary,
        cleaning up shadow/spill state on the way out.
        """
        if self._closed:
            raise RuntimeError("runtime has been shut down")
        self.metrics.record_submitted()
        if deadline_s is None:
            deadline_s = self.default_deadline_s
        deadline = (
            self.resilience.now() + deadline_s if deadline_s is not None else None
        )
        token = CancellationToken(deadline=deadline, clock=self.resilience.now)
        # When tracing, remember the enqueue instant so the worker can emit
        # a "queued" span for the time spent waiting for a pool thread.
        queued_at = time.time() if get_tracer().enabled else None
        try:
            future = self._pool.submit(
                self._run, query, cast_method, chunk_size, use_cache, queued_at,
                deadline, token,
            )
        except RuntimeError:
            # Lost the race with a concurrent shutdown(): the pool refused
            # the work; report it the same way the _closed check would have.
            raise RuntimeError("runtime has been shut down") from None
        future.cancellation_token = token  # type: ignore[attr-defined]
        return future

    def execute(self, query: str, cast_method: str = "binary",
                chunk_size: int | None = None, use_cache: bool = True,
                deadline_s: float | None = None) -> Relation:
        """Submit and wait: the blocking single-client call."""
        return self.submit(query, cast_method, chunk_size, use_cache, deadline_s).result()

    def execute_many(self, queries: Sequence[str], cast_method: str = "binary",
                     chunk_size: int | None = None, use_cache: bool = True) -> list[Relation]:
        """Run a batch concurrently; results come back in submission order."""
        futures = [self.submit(q, cast_method, chunk_size, use_cache) for q in queries]
        return [future.result() for future in futures]

    def trace(self, query: str, cast_method: str = "binary",
              chunk_size: int | None = None,
              use_cache: bool = False) -> "tuple[Relation, Tracer]":
        """Run one query traced, without enabling tracing for anyone else.

        A fresh enabled :class:`Tracer` is installed as a *thread-scoped*
        override for just this call (concurrent traffic keeps seeing the
        process-global tracer), the query runs synchronously in the calling
        thread, and both the result and the tracer full of spans come back::

            relation, tracer = runtime.trace("SELECT ...")
            print(render_tree(tracer.spans()))

        ``use_cache`` defaults to False so the trace shows real execution
        rather than one cache-hit span.
        """
        if self._closed:
            raise RuntimeError("runtime has been shut down")
        tracer = Tracer(enabled=True)
        self.metrics.record_submitted()
        with tracer_scope(tracer):
            result = self._run(query, cast_method, chunk_size, use_cache)
        return result, tracer

    def session(self) -> "RuntimeSession":
        return RuntimeSession(self, next(_SESSION_IDS))

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting queries and wind down the worker pool.

        Contract (idempotent; callable from any thread):

        * After ``shutdown`` *starts*, every ``submit`` raises
          ``RuntimeError`` — including submits racing the shutdown, which
          the pool itself refuses.
        * ``wait=True`` (default) blocks until every already-submitted query
          finishes; their futures complete normally.
        * ``wait=False`` returns immediately: queries whose worker already
          started still run to completion, but *queued* queries are
          cancelled and their futures raise ``CancelledError``.
        """
        self._closed = True
        self._pool.shutdown(wait=wait, cancel_futures=not wait)

    def __enter__(self) -> "PolystoreRuntime":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def describe(self) -> dict:
        return {
            "workers": self.workers,
            # Every engine/admission counter is a registered metric now, so
            # the bare snapshot carries the whole surface.
            "metrics": self.metrics.snapshot(),
            "admission": self.admission.describe(),
            "cache": self.cache.describe(),
            "journal": self.journal.describe(),
            "recovery": (
                None if self.last_recovery is None else self.last_recovery.as_dict()
            ),
        }

    # --------------------------------------------------------------- recovery
    def recover(self) -> RecoveryReport:
        """Replay the write-ahead intent journal and reconcile the catalog.

        The crash-recovery entry point, run automatically at startup when
        the journal carries intents (``recover_on_start``) and callable at
        any time — it is idempotent.  Committed intents are rolled forward
        (finish the catalog swap / source drop a crash interrupted, repair
        or discard the primary a committed election demoted), incomplete
        ones rolled back (drop orphaned CAST shadows, un-promote
        half-elected primaries, abort unapplied DML — consulting the
        engines' idempotency-token memory to keep DML that *did* land),
        and the catalog is reconciled against what the engines actually
        hold.  Returns the :class:`RecoveryReport`; counters land in
        ``metrics.snapshot()`` (``intents_replayed``,
        ``recovery_rollbacks``).
        """
        tracer = get_tracer()
        with tracer.span("recovery", kind="resilience") as span:
            report = JournalRecovery(
                self.bigdawg,
                self.journal,
                health=self.resilience.engine_is_available,
            ).recover()
            span.set("replayed", report.intents_replayed)
            span.set("rolled_back", report.rolled_back)
        self.metrics.registry.counter("intents_replayed").inc(report.intents_replayed)
        self.metrics.registry.counter("recovery_rollbacks").inc(report.rolled_back)
        self.last_recovery = report
        return report

    # ------------------------------------------------- relational executor knob
    def relational_execution_modes(self) -> dict[str, int]:
        """SELECTs served per relational executor path, summed over engines."""
        counts: dict[str, int] = {}
        for engine in self.bigdawg.catalog.engines():
            modes = getattr(engine, "executions_by_mode", None)
            if modes:
                for mode, count in modes.items():
                    counts[mode] = counts.get(mode, 0) + count
        return counts

    def relational_fallback_reasons(self) -> dict[str, int]:
        """Batch-pipeline row-executor fallbacks per reason, summed over engines."""
        counts: dict[str, int] = {}
        for engine in self.bigdawg.catalog.engines():
            reasons = getattr(engine, "fallback_reasons", None)
            if reasons:
                for reason, count in reasons.items():
                    counts[reason] = counts.get(reason, 0) + count
        return counts

    def relational_columns_pruned(self) -> int:
        """Columns the optimizer pruned below joins/aggregates, engine-wide."""
        total = 0
        for engine in self.bigdawg.catalog.engines():
            total += getattr(engine, "columns_pruned", 0)
        return total

    def relational_groupby_paths(self) -> dict[str, int]:
        """Grouped aggregations per path (stream/block/row), summed over engines."""
        counts: dict[str, int] = {}
        for engine in self.bigdawg.catalog.engines():
            paths = getattr(engine, "groupby_paths", None)
            if paths:
                for path, count in paths.items():
                    counts[path] = counts.get(path, 0) + count
        return counts

    def relational_morsels_executed(self) -> int:
        """Scan morsels emitted into batch pipelines, summed over engines."""
        total = 0
        for engine in self.bigdawg.catalog.engines():
            total += getattr(engine, "morsels_executed", 0)
        return total

    def relational_partitions_spilled(self) -> int:
        """Join build partitions spilled to temp files, summed over engines."""
        total = 0
        for engine in self.bigdawg.catalog.engines():
            total += getattr(engine, "partitions_spilled", 0)
        return total

    def relational_peak_build_bytes(self) -> int:
        """Largest estimated resident join build footprint, engine-wide max."""
        peak = 0
        for engine in self.bigdawg.catalog.engines():
            peak = max(peak, getattr(engine, "peak_build_bytes", 0))
        return peak

    def set_relational_parallelism(self, value: int | str) -> None:
        """Set every relational engine's intra-query worker count.

        Each engine keeps borrowing extra workers from the runtime's shared
        :class:`WorkerCredits` budget, so raising the knob never lets the
        deployment exceed ``workers x parallelism`` busy threads.
        """
        resolve_parallelism(value)  # validates before touching any engine
        self.parallelism = value
        for engine in self.bigdawg.catalog.engines():
            if hasattr(engine, "task_credits"):
                engine.parallelism = value
                engine.task_credits = self.task_credits

    def set_relational_execution_mode(self, mode: str) -> None:
        """Flip every relational engine in the polystore to one executor path.

        This is the serving-layer end of the ``execution_mode`` knob: a
        benchmark (or an operator) can switch the whole deployment between
        vectorized and row execution without touching individual engines.
        """
        for engine in self.bigdawg.catalog.engines():
            if hasattr(engine, "execution_mode"):
                engine.execution_mode = mode

    # -------------------------------------------------------------- execution
    def _run(self, query: str, cast_method: str, chunk_size: int | None,
             use_cache: bool, queued_at: float | None = None,
             deadline: float | None = None,
             token: CancellationToken | None = None) -> Relation:
        tracer = get_tracer()
        if tracer.enabled and tracer.sample_every and not tracer.sample_query():
            # This query lost the 1-in-N sampling draw: install a disabled
            # tracer for the worker's whole call tree so every layer below
            # (steps, CAST chunks, operators) skips its spans too.
            with tracer_scope(_UNSAMPLED_TRACER):
                return self._run_query(
                    query, cast_method, chunk_size, use_cache, None, deadline,
                    token,
                )
        return self._run_query(
            query, cast_method, chunk_size, use_cache, queued_at, deadline, token
        )

    def _run_query(self, query: str, cast_method: str, chunk_size: int | None,
                   use_cache: bool, queued_at: float | None,
                   deadline: float | None,
                   token: CancellationToken | None = None) -> Relation:
        started = time.perf_counter()
        tracer = get_tracer()
        if token is None:
            # Direct callers (runtime.trace) skip submit(): give the query a
            # token anyway so its deadline still cancels mid-batch.
            token = CancellationToken(deadline=deadline, clock=self.resilience.now)
        with cancel_scope(token), \
                tracer.span("query", kind="lifecycle", query=_span_text(query)) as root:
            if queued_at is not None and tracer.enabled:
                tracer.record(
                    "queued", start_s=queued_at, duration_s=time.time() - queued_at,
                    parent=root, kind="lifecycle",
                )
            try:
                if use_cache:
                    hit = self.cache.get(query)
                    if hit is not None:
                        elapsed = time.perf_counter() - started
                        self.metrics.record_completed(elapsed, cached=True)
                        root.set("cached", True)
                        return hit
                fingerprint = self.cache.fingerprint()
                pre_open: set[str] = set()
                if use_cache and self.serve_stale_on_open:
                    # Breakers already open *before* this execution: a
                    # transient failure mid-query only qualifies for a stale
                    # read when the query was degraded going in, so a failure
                    # that first trips its own breaker still surfaces hard.
                    try:
                        pre_open = self.resilience.open_engines(
                            self._referenced_engines(query)
                        )
                    except BigDawgError:
                        pre_open = set()
                result, plan = self._execute_uncached(
                    query, cast_method, chunk_size, deadline
                )
                if use_cache:
                    # put() refuses the entry if any engine (including ones this
                    # very query mutated) or the catalog moved past `fingerprint`.
                    self.cache.put(query, result, fingerprint)
                elapsed = time.perf_counter() - started
                self.metrics.record_completed(elapsed, cached=False)
                if self.slow_queries.enabled:
                    self.slow_queries.observe(query, elapsed)
                self._observe(query, plan, elapsed)
                return result
            except (CircuitOpenError, TransientEngineError) as error:
                # Degraded-mode read: the live execution failed against an
                # engine whose breaker is (now) open, but a last-known-good
                # cached result may still be useful.  Covers multi-engine
                # plans — *any* required breaker being open qualifies, not
                # just the one that refused admission — and transient
                # failures that tripped a breaker mid-query.  Strictly
                # opt-in (serve_stale_on_open) and always flagged.
                if use_cache and self.serve_stale_on_open:
                    open_engines = self._open_engines_for(query, error)
                    if not isinstance(error, CircuitOpenError):
                        # Transient failures only qualify when a required
                        # breaker was open before the query started (see
                        # ``pre_open`` above).
                        open_engines &= pre_open
                    stale = self.cache.get_stale(query) if open_engines else None
                    if stale is not None:
                        self.metrics.registry.counter("stale_served").inc()
                        with self._degraded_lock:
                            for name in open_engines:
                                self._stale_served_by_engine[name] = (
                                    self._stale_served_by_engine.get(name, 0) + 1
                                )
                        elapsed = time.perf_counter() - started
                        self.metrics.record_completed(elapsed, cached=True)
                        root.set("stale", True)
                        return stale
                self.metrics.record_failed()
                raise
            except Exception:
                self.metrics.record_failed()
                raise

    def _execute_uncached(
        self, query: str, cast_method: str, chunk_size: int | None,
        deadline: float | None = None,
    ) -> tuple[Relation, QueryPlan | None]:
        stripped = query.strip()
        tracer = get_tracer()
        if self.bigdawg.is_scoped(stripped):
            with tracer.span("planned", kind="lifecycle"):
                plan = self.bigdawg.plan(
                    stripped, cast_method=cast_method, chunk_size=chunk_size
                )
            execution = self.bigdawg.planner.start(plan)
            try:
                with tracer.span("executed", kind="lifecycle", steps=len(plan.steps)):
                    self._run_plan(plan, execution, deadline)
                self.metrics.record_casts_skipped(len(execution.skipped_casts))
                return execution.finish(), plan
            finally:
                execution.cleanup()
        island = self.bigdawg._choose_island(stripped)
        members = [engine.name for engine in island.member_engines()]

        def resolve() -> set[str]:
            engines = self._referenced_engines(stripped, members)
            if not engines and members:
                engines = {members[0].lower()}
            return engines

        with tracer.span("executed", kind="lifecycle"):
            return self._dispatch_resilient(
                resolve(),
                lambda: island.execute(stripped),
                deadline=deadline,
                description="island query",
                reresolve=resolve,
                island=island,
                text=stripped,
                cast_method=cast_method,
                chunk_size=chunk_size,
            ), None

    def _run_plan(self, plan: QueryPlan, execution: PlanExecution,
                  deadline: float | None = None) -> None:
        """Run steps in dependency waves; a wave's steps run on parallel threads."""
        dependencies = plan.step_dependencies()
        completed: set[int] = set()
        remaining = set(range(len(plan.steps)))
        while remaining:
            ready = sorted(i for i in remaining if dependencies[i] <= completed)
            if not ready:
                raise PlanningError("plan dependencies contain a cycle")
            if len(ready) == 1 or not self.parallel_steps:
                for index in ready:
                    self._run_admitted_step(execution, plan, index, deadline)
            else:
                errors: list[BaseException] = []
                # Wave threads are raw Threads, not pool workers: carry the
                # query's trace context across explicitly so step spans nest
                # under the submitting query's "executed" span.
                ctx = capture_context()

                def run(index: int) -> None:
                    try:
                        with_context(
                            ctx, self._run_admitted_step, execution, plan, index,
                            deadline,
                        )
                    except BaseException as exc:  # noqa: BLE001 - re-raised below
                        errors.append(exc)

                threads = [
                    threading.Thread(target=run, args=(index,), daemon=True)
                    for index in ready
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                if errors:
                    raise errors[0]
            completed.update(ready)
            remaining.difference_update(ready)

    def _run_admitted_step(self, execution: PlanExecution, plan: QueryPlan,
                           index: int, deadline: float | None = None) -> None:
        step = plan.steps[index]
        engines = self._step_engines(step)
        tracer = get_tracer()
        scope = getattr(step, "scope", None)
        island = self.bigdawg.island(scope.island) if scope is not None else None
        text = scope.body_without_casts if scope is not None else None
        with tracer.span("plan_step", kind="step", step=step.describe()):
            # The whole admit-and-dispatch is the retryable unit: a retried
            # attempt re-queues at the admission gates (fairness under load)
            # and the breakers are checked *before* admission, so traffic to
            # a tripped engine fails fast instead of holding queue slots.
            self._dispatch_resilient(
                engines,
                lambda: execution.run_step(index),
                deadline=deadline,
                description=step.describe(),
                reresolve=lambda: self._step_engines(step),
                island=island,
                text=text,
                cast_method=getattr(step, "method", "binary"),
                chunk_size=getattr(step, "chunk_size", None),
            )

    def _dispatch_resilient(self, engines: set[str], call, deadline: float | None,
                            description: str, reresolve=None, island=None,
                            text: str | None = None, cast_method: str = "binary",
                            chunk_size: int | None = None):
        """Dispatch under retry/breakers/failover, journaling mutations.

        Statements the islands route to a primary copy (DML/DDL) are
        wrapped in a write-ahead intent: the begin record lands before the
        dispatch, the intent's idempotency token is stamped onto the engines
        once the write applies, and the commit record seals it — so crash
        recovery can always classify an interrupted write as applied (roll
        forward) or not (roll back).  Reads skip the journal entirely.
        """
        if text is None or not _is_write_statement(text):
            return self._dispatch_with_failover(
                engines, call, deadline, description, reresolve, island,
                text, cast_method, chunk_size,
            )
        intent = self.journal.begin(
            "dml",
            query=_span_text(text),
            engines=sorted(engines),
            tables=self._catalog_tables(text),
        )
        self.journal.crash_point("dml.begin")
        try:
            result = self._dispatch_with_failover(
                engines, call, deadline, description, reresolve, island,
                text, cast_method, chunk_size, write_token=intent.token,
            )
        except BaseException as error:
            if not isinstance(error, SimulatedCrashError):
                intent.abort(error=type(error).__name__)
            raise
        self.journal.crash_point("dml.dispatched")
        intent.mark("applied")
        self.journal.crash_point("dml.applied")
        intent.commit()
        self.journal.crash_point("dml.committed")
        return result

    def _dispatch_with_failover(self, engines: set[str], call,
                                deadline: float | None, description: str,
                                reresolve=None, island=None,
                                text: str | None = None,
                                cast_method: str = "binary",
                                chunk_size: int | None = None,
                                write_token: str | None = None):
        """Dispatch under retry/breakers; on an open breaker, fail over.

        When the protected dispatch fails against an engine whose breaker is
        (now) open, the step is *re-planned* instead of surfacing the error.
        For reads, engine resolution runs again — with the breaker open, the
        catalog's replica-aware routing now picks a healthy fresh copy —
        and, if plain rerouting finds nothing, a fresh healthy replica from
        outside the island is CAST into a healthy member first.  For writes,
        rerouting alone cannot help (only the primary accepts writes), so a
        fresh healthy replica is *promoted* to primary first — a journaled
        election under a ``failover.write`` span — and the write re-routes
        to the new primary.  Only when the rerouted engine set is actually
        clear of open breakers is the step re-dispatched, with its retry
        attempts budgeted out of whatever deadline remains, so a failover
        can never overshoot the query's budget.
        """
        try:
            return self.resilience.run(
                engines,
                lambda: self._admitted_dispatch(engines, call, write_token),
                deadline=deadline,
                description=description,
            )
        except (CircuitOpenError, TransientEngineError) as error:
            broken = self._open_engines_for_dispatch(engines, error)
            if not broken or reresolve is None:
                raise
            failover_attempts: int | None = None
            if deadline is not None:
                # Deadline-aware failover budgeting: the failed primary
                # already spent part of the query's budget, so the
                # re-dispatch gets only as many attempts (with worst-case
                # backoff) as still fit before the deadline.
                remaining = deadline - self.resilience.now()
                if remaining <= 0:
                    raise DeadlineExceededError(
                        f"query deadline exhausted before failover of "
                        f"{description or 'step'}"
                    ) from error
                failover_attempts = self.resilience.retry.attempts_within(remaining)
            is_write = text is not None and _is_write_statement(text)
            elected = False
            if is_write and island is not None:
                elected = self._elect_write_primaries(text, broken, description)
                if not elected:
                    raise
            rerouted = set(reresolve())
            if not is_write and (rerouted == engines or rerouted & broken) \
                    and island is not None and text is not None:
                if self._provision_replicas(text, island, cast_method, chunk_size):
                    rerouted = set(reresolve())
            if not rerouted or rerouted == engines or rerouted & broken:
                raise
            self.metrics.registry.counter("failover_total").inc()
            if elected:
                self.metrics.registry.counter("writes_failed_over").inc()
            with self._degraded_lock:
                for name in sorted(broken):
                    self._failover_by_engine[name] = (
                        self._failover_by_engine.get(name, 0) + 1
                    )
            tracer = get_tracer()
            with tracer.span(
                "failover.write" if elected else "failover",
                kind="resilience", step=description,
                from_engines=",".join(sorted(broken)),
                to_engines=",".join(sorted(rerouted)),
                error=type(error).__name__,
                budget_attempts=failover_attempts or 0,
            ):
                return self.resilience.run(
                    rerouted,
                    lambda: self._admitted_dispatch(rerouted, call, write_token),
                    deadline=deadline,
                    description=f"failover: {description}",
                    max_attempts=failover_attempts,
                )

    def _elect_write_primaries(self, text: str, broken: set[str],
                               description: str) -> bool:
        """Promote fresh healthy replicas to primary for a failed write.

        For every catalog object the statement mentions whose primary sits
        on a broken engine, a *fresh* (current-content) replica on a healthy
        engine is promoted via :meth:`BigDawgCatalog.promote_primary`.  Each
        election is journaled as a ``promotion`` intent — begin before the
        catalog swap, commit after — so a crash mid-election is either
        rolled back (un-promote) or, once committed, finished by recovery:
        the demoted copy is repaired with an anti-entropy CAST or discarded.
        Returns True when at least one primary moved.
        """
        catalog = self.bigdawg.catalog
        elected = False
        for name in sorted(set(_IDENTIFIER_RE.findall(text))):
            check_cancelled()  # client cancellation lands between elections
            try:
                primary = catalog.locate(name)
            except ObjectNotFoundError:
                continue
            if primary.engine_name not in broken:
                continue
            candidates = [
                loc for loc in catalog.fresh_locations(name)
                if loc.engine_name != primary.engine_name
                and self.resilience.engine_is_available(loc.engine_name)
            ]
            if not candidates:
                continue
            target = candidates[0].engine_name
            intent = self.journal.begin(
                "promotion",
                object=primary.name,
                from_engine=primary.engine_name,
                to_engine=target,
                step=description,
            )
            self.journal.crash_point("promotion.begin")
            try:
                catalog.promote_primary(name, target)
            except CatalogError as error:
                # Lost a race (another thread promoted first, or the copy
                # went stale between the check and the swap): record the
                # abort and move on — reresolve() will see whatever primary
                # won.
                intent.abort(error=type(error).__name__)
                continue
            intent.mark("catalog")
            self.journal.crash_point("promotion.catalog")
            intent.commit()
            self.journal.crash_point("promotion.committed")
            elected = True
        return elected

    def _catalog_tables(self, text: str) -> list[str]:
        """Catalog objects a statement mentions (for the journal record)."""
        names = []
        for token in sorted(set(_IDENTIFIER_RE.findall(text))):
            try:
                names.append(self.bigdawg.catalog.locate(token).name)
            except ObjectNotFoundError:
                continue
        return names

    def _open_engines_for_dispatch(self, engines: set[str],
                                   error: BaseException) -> set[str]:
        """Engines in this dispatch whose breaker is open, plus the refuser."""
        broken = self.resilience.open_engines(engines)
        name = getattr(error, "engine", None)
        if name and not self.resilience.engine_is_available(name):
            broken.add(name.lower())
        return broken

    def _open_engines_for(self, query: str, error: BaseException) -> set[str]:
        """Open-breaker engines the *query* needs (the stale-serve test)."""
        return self._open_engines_for_dispatch(
            self._referenced_engines(query), error
        )

    def _provision_replicas(self, text: str, island, cast_method: str,
                            chunk_size: int | None) -> bool:
        """CAST stranded objects' fresh healthy replicas into the island.

        For each object the step reads whose every in-island copy is
        unhealthy but which has a fresh healthy copy *outside* the island,
        copy that replica onto a healthy island member — the alternate-CAST
        failover path.  Returns True when at least one object moved.
        """
        members = [engine.name.lower() for engine in island.member_engines()]
        healthy_members = [
            name for name in members if self.resilience.engine_is_available(name)
        ]
        if not healthy_members:
            return False
        catalog = self.bigdawg.catalog
        moved = False
        for token in sorted(set(_IDENTIFIER_RE.findall(text))):
            try:
                primary = catalog.locate(token)
            except ObjectNotFoundError:
                continue
            fresh = catalog.fresh_locations(token)
            healthy = [
                loc for loc in fresh
                if self.resilience.engine_is_available(loc.engine_name)
            ]
            if not healthy or any(loc.engine_name in healthy_members for loc in healthy):
                continue  # nothing to copy from, or already readable in-island
            source = healthy[0].engine_name
            try:
                self.bigdawg.migrator.cast(
                    token, healthy_members[0], method=cast_method,
                    chunk_size=chunk_size,
                    source_engine=None if source == primary.engine_name else source,
                )
            except BigDawgError:
                continue  # best effort; the re-raise path reports the original
            moved = True
        return moved

    def _admitted_dispatch(self, engines: set[str], fn,
                           write_token: str | None = None):
        """Admit at the engines' gates, then dispatch one attempt of ``fn``.

        For journaled writes, the intent's idempotency token is stamped onto
        the touched engines *after* the dispatch succeeds — recovery uses
        the token to tell an applied-but-uncommitted write (roll forward)
        from one that never reached an engine (roll back).
        """
        tracer = get_tracer()
        with ExitStack() as stack:
            with tracer.span("admitted", kind="lifecycle",
                             engines=",".join(sorted(engines))):
                stack.enter_context(self.admission.admit(engines))
            self._dispatch_delay()
            result = fn()
            if write_token is not None:
                for name in engines:
                    try:
                        self.bigdawg.catalog.engine(name).note_write_token(write_token)
                    except ObjectNotFoundError:  # pragma: no cover - defensive
                        pass
            return result

    def _dispatch_delay(self) -> None:
        if self.engine_latency > 0:
            time.sleep(self.engine_latency)

    # ------------------------------------------------------- engine discovery
    def _step_engines(self, step: object) -> set[str]:
        """The engines a plan step will touch, for admission control."""
        catalog = self.bigdawg.catalog
        if isinstance(step, CastStep):
            engines = {step.target_engine.lower()}
            if step.source_engine is not None:
                engines.add(step.source_engine.lower())
            else:
                try:
                    engines.add(catalog.locate(step.object_name).engine_name)
                except ObjectNotFoundError:
                    pass
            return engines
        scope = getattr(step, "scope", None)
        if scope is None:  # pragma: no cover - defensive
            return set()
        members = [
            engine.name
            for engine in self.bigdawg.island(scope.island).member_engines()
        ]
        engines = self._referenced_engines(scope.body_without_casts, members)
        if isinstance(step, BindingStep):
            # The materialization writes into the temp engine: admit there
            # too, so binding writes stay inside that engine's slot budget.
            engines.add(self.bigdawg.temp_engine().name.lower())
        return engines

    def _referenced_engines(self, text: str,
                            members: Sequence[str] | None = None) -> set[str]:
        """Engines serving reads of any catalog object the text mentions.

        Uses the catalog's replica-aware read routing (restricted to the
        island's ``members`` when given), so admission slots and breaker
        claims are taken against the copies the islands will actually read —
        not a primary that routing is steering around.
        """
        catalog = self.bigdawg.catalog
        # Write statements are routed to the primary by the islands; claim
        # the same copy here so admission matches the actual dispatch.
        is_write = _is_write_statement(text)
        engines: set[str] = set()
        for token in set(_IDENTIFIER_RE.findall(text)):
            try:
                if is_write:
                    engines.add(catalog.locate(token).engine_name)
                else:
                    engines.add(
                        catalog.locate_for_read(token, members=members).engine_name
                    )
            except ObjectNotFoundError:
                continue
        return engines

    # -------------------------------------------------------------- monitoring
    def _observe(self, query: str, plan: QueryPlan | None, elapsed: float) -> None:
        """Feed the execution monitor so the advisor learns from live traffic."""
        try:
            if plan is not None and plan.steps:
                final = plan.steps[-1]
                scope = getattr(final, "scope", None)
                island = scope.island if scope is not None else "auto"
                body = scope.body_without_casts if scope is not None else query
            else:
                island, body = "auto", query
            catalog = self.bigdawg.catalog
            for token in _IDENTIFIER_RE.findall(body):
                try:
                    location = catalog.locate(token)
                except ObjectNotFoundError:
                    continue
                self.bigdawg.monitor.record(
                    f"runtime_{island}", location.name, location.engine_name, elapsed
                )
                return
        except BigDawgError:  # pragma: no cover - observation must never fail a query
            pass


class RuntimeSession:
    """A per-client handle: counts its traffic and scopes its temporaries.

    Any temporary materialized through :meth:`materialize` lives until the
    session closes (use it as a context manager), at which point it is
    dropped from both its engine and the catalog — per-query WITH bindings
    are already scoped to their plan execution and need no session help.
    """

    def __init__(self, runtime: PolystoreRuntime, session_id: int) -> None:
        self.runtime = runtime
        self.id = session_id
        self.queries_submitted = 0
        self._temporaries: list[str] = []
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------ query
    def submit(self, query: str, **options: object) -> "Future[Relation]":
        self._check_open()
        with self._lock:
            self.queries_submitted += 1
        return self.runtime.submit(query, **options)  # type: ignore[arg-type]

    def execute(self, query: str, **options: object) -> Relation:
        return self.submit(query, **options).result()

    # ------------------------------------------------------------- temporaries
    def materialize(self, name: str, relation: Relation) -> str:
        """Store a relation as a session-scoped temporary table."""
        self._check_open()
        physical = f"{name}__s{self.id}"
        self.runtime.bigdawg.materialize_temporary(physical, relation)
        with self._lock:
            self._temporaries.append(physical)
        return physical

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        with self._lock:
            temporaries, self._temporaries = self._temporaries, []
        for name in temporaries:
            self.runtime.bigdawg.drop_temporary(name)

    def __enter__(self) -> "RuntimeSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(f"session {self.id} is closed")


__all__ = ["PolystoreRuntime", "RuntimeSession"]
