"""The polystore runtime: a worker pool serving many clients concurrently.

:class:`PolystoreRuntime` is the layer between clients and
:class:`~repro.core.bigdawg.BigDawg`.  Each submitted query flows through:

1. **Result cache** — a fingerprint-verified lookup; hits return immediately
   and never touch an engine.
2. **Planning** — scoped queries become a :class:`~repro.core.query.planner.QueryPlan`
   whose dependency sets say which steps may overlap.
3. **Scheduling** — plan steps run in dependency waves; steps in the same
   wave (independent CASTs, unrelated WITH-binding materializations) run on
   parallel threads.
4. **Admission** — before running, every step is admitted by the gates of the
   engines it touches, so no engine sees more concurrency than its slot
   budget and a slow scan on one engine cannot starve the others.
5. **Accounting** — latency lands in :class:`~repro.runtime.metrics.RuntimeMetrics`
   and in the :class:`~repro.core.monitor.ExecutionMonitor`, where the
   migration advisor mines it.

``engine_latency`` emulates the network hop to an out-of-process engine
(every engine here is in-process, which a real BigDAWG deployment is not):
each admitted dispatch sleeps that long while holding its slots.  Benchmarks
use it to study scheduling under realistic service times; it defaults to 0.
"""

from __future__ import annotations

import itertools
import re
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import ExitStack
from typing import Sequence

from repro.common.errors import BigDawgError, ObjectNotFoundError, PlanningError
from repro.common.parallel import WorkerCredits, resolve_parallelism
from repro.common.schema import Relation
from repro.core.bigdawg import BigDawg
from repro.core.query.planner import BindingStep, CastStep, PlanExecution, QueryPlan
from repro.observability.profile import SlowQueryLog
from repro.observability.tracing import capture_context, get_tracer, with_context
from repro.runtime.admission import AdmissionController
from repro.runtime.cache import ResultCache
from repro.runtime.metrics import RuntimeMetrics

_IDENTIFIER_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def _span_text(query: str, limit: int = 200) -> str:
    """Query text trimmed for span attributes (traces stay bounded)."""
    text = " ".join(query.split())
    return text if len(text) <= limit else text[: limit - 3] + "..."

#: Process-wide session ids: several runtimes may serve one polystore, and
#: session-scoped temp names (``name__s<id>``) must never collide across them.
_SESSION_IDS = itertools.count(1)


class PolystoreRuntime:
    """Concurrent serving layer over one :class:`BigDawg` polystore."""

    def __init__(
        self,
        bigdawg: BigDawg,
        workers: int = 4,
        slots_per_engine: int = 2,
        admission_timeout: float | None = 30.0,
        engine_slots: dict[str, int] | None = None,
        cache_capacity: int = 256,
        engine_latency: float = 0.0,
        parallel_steps: bool = True,
        parallelism: int | str = "auto",
    ) -> None:
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        self.bigdawg = bigdawg
        self.workers = workers
        self.admission = AdmissionController(
            slots_per_engine=slots_per_engine, timeout=admission_timeout, slots=engine_slots
        )
        self.cache = ResultCache(bigdawg.catalog, capacity=cache_capacity)
        self.metrics = RuntimeMetrics()
        #: Queries slower than ``slow_queries.threshold_s`` land here (off
        #: until a threshold is set).
        self.slow_queries = SlowQueryLog()
        # Queue-wait flows from the gates into the metrics histogram, and
        # every aggregated engine counter becomes a computed gauge in the
        # registry — one uniform snapshot instead of per-counter kwargs.
        self.admission.wait_sink = self.metrics.record_queue_wait
        registry = self.metrics.registry
        registry.register_gauge("queue_depth", self.admission.queue_depth)
        registry.register_gauge(
            "admission_wait_s_total", lambda: round(self.admission.queue_wait_seconds(), 6)
        )
        registry.register_gauge(
            "admission_held_s_total", lambda: round(self.admission.held_seconds(), 6)
        )
        registry.register_gauge(
            "relational_execution_modes", self.relational_execution_modes
        )
        registry.register_gauge(
            "relational_fallback_reasons", self.relational_fallback_reasons
        )
        registry.register_gauge("relational_columns_pruned", self.relational_columns_pruned)
        registry.register_gauge("relational_groupby_paths", self.relational_groupby_paths)
        registry.register_gauge(
            "relational_morsels_executed", self.relational_morsels_executed
        )
        registry.register_gauge(
            "relational_partitions_spilled", self.relational_partitions_spilled
        )
        registry.register_gauge(
            "relational_peak_build_bytes", self.relational_peak_build_bytes
        )
        self.engine_latency = engine_latency
        self.parallel_steps = parallel_steps
        # Intra-query morsel parallelism: every relational engine gets the
        # knob plus one shared fleet-wide extra-worker budget, so a single
        # big join cannot grab `workers x parallelism` threads under load.
        self.parallelism = parallelism
        self.task_credits = WorkerCredits(max(0, resolve_parallelism(parallelism) - 1) * workers)
        self.set_relational_parallelism(parallelism)
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="bigdawg-runtime"
        )
        self._closed = False

    # ------------------------------------------------------------- client API
    def submit(self, query: str, cast_method: str = "binary",
               chunk_size: int | None = None, use_cache: bool = True) -> "Future[Relation]":
        """Enqueue one query; returns a future resolving to its Relation."""
        if self._closed:
            raise RuntimeError("runtime has been shut down")
        self.metrics.record_submitted()
        # When tracing, remember the enqueue instant so the worker can emit
        # a "queued" span for the time spent waiting for a pool thread.
        queued_at = time.time() if get_tracer().enabled else None
        return self._pool.submit(
            self._run, query, cast_method, chunk_size, use_cache, queued_at
        )

    def execute(self, query: str, cast_method: str = "binary",
                chunk_size: int | None = None, use_cache: bool = True) -> Relation:
        """Submit and wait: the blocking single-client call."""
        return self.submit(query, cast_method, chunk_size, use_cache).result()

    def execute_many(self, queries: Sequence[str], cast_method: str = "binary",
                     chunk_size: int | None = None, use_cache: bool = True) -> list[Relation]:
        """Run a batch concurrently; results come back in submission order."""
        futures = [self.submit(q, cast_method, chunk_size, use_cache) for q in queries]
        return [future.result() for future in futures]

    def session(self) -> "RuntimeSession":
        return RuntimeSession(self, next(_SESSION_IDS))

    def shutdown(self, wait: bool = True) -> None:
        self._closed = True
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "PolystoreRuntime":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def describe(self) -> dict:
        return {
            "workers": self.workers,
            # Every engine/admission counter is a registered metric now, so
            # the bare snapshot carries the whole surface.
            "metrics": self.metrics.snapshot(),
            "admission": self.admission.describe(),
            "cache": self.cache.describe(),
        }

    # ------------------------------------------------- relational executor knob
    def relational_execution_modes(self) -> dict[str, int]:
        """SELECTs served per relational executor path, summed over engines."""
        counts: dict[str, int] = {}
        for engine in self.bigdawg.catalog.engines():
            modes = getattr(engine, "executions_by_mode", None)
            if modes:
                for mode, count in modes.items():
                    counts[mode] = counts.get(mode, 0) + count
        return counts

    def relational_fallback_reasons(self) -> dict[str, int]:
        """Batch-pipeline row-executor fallbacks per reason, summed over engines."""
        counts: dict[str, int] = {}
        for engine in self.bigdawg.catalog.engines():
            reasons = getattr(engine, "fallback_reasons", None)
            if reasons:
                for reason, count in reasons.items():
                    counts[reason] = counts.get(reason, 0) + count
        return counts

    def relational_columns_pruned(self) -> int:
        """Columns the optimizer pruned below joins/aggregates, engine-wide."""
        total = 0
        for engine in self.bigdawg.catalog.engines():
            total += getattr(engine, "columns_pruned", 0)
        return total

    def relational_groupby_paths(self) -> dict[str, int]:
        """Grouped aggregations per path (stream/block/row), summed over engines."""
        counts: dict[str, int] = {}
        for engine in self.bigdawg.catalog.engines():
            paths = getattr(engine, "groupby_paths", None)
            if paths:
                for path, count in paths.items():
                    counts[path] = counts.get(path, 0) + count
        return counts

    def relational_morsels_executed(self) -> int:
        """Scan morsels emitted into batch pipelines, summed over engines."""
        total = 0
        for engine in self.bigdawg.catalog.engines():
            total += getattr(engine, "morsels_executed", 0)
        return total

    def relational_partitions_spilled(self) -> int:
        """Join build partitions spilled to temp files, summed over engines."""
        total = 0
        for engine in self.bigdawg.catalog.engines():
            total += getattr(engine, "partitions_spilled", 0)
        return total

    def relational_peak_build_bytes(self) -> int:
        """Largest estimated resident join build footprint, engine-wide max."""
        peak = 0
        for engine in self.bigdawg.catalog.engines():
            peak = max(peak, getattr(engine, "peak_build_bytes", 0))
        return peak

    def set_relational_parallelism(self, value: int | str) -> None:
        """Set every relational engine's intra-query worker count.

        Each engine keeps borrowing extra workers from the runtime's shared
        :class:`WorkerCredits` budget, so raising the knob never lets the
        deployment exceed ``workers x parallelism`` busy threads.
        """
        resolve_parallelism(value)  # validates before touching any engine
        self.parallelism = value
        for engine in self.bigdawg.catalog.engines():
            if hasattr(engine, "task_credits"):
                engine.parallelism = value
                engine.task_credits = self.task_credits

    def set_relational_execution_mode(self, mode: str) -> None:
        """Flip every relational engine in the polystore to one executor path.

        This is the serving-layer end of the ``execution_mode`` knob: a
        benchmark (or an operator) can switch the whole deployment between
        vectorized and row execution without touching individual engines.
        """
        for engine in self.bigdawg.catalog.engines():
            if hasattr(engine, "execution_mode"):
                engine.execution_mode = mode

    # -------------------------------------------------------------- execution
    def _run(self, query: str, cast_method: str, chunk_size: int | None,
             use_cache: bool, queued_at: float | None = None) -> Relation:
        started = time.perf_counter()
        tracer = get_tracer()
        with tracer.span("query", kind="lifecycle", query=_span_text(query)) as root:
            if queued_at is not None and tracer.enabled:
                tracer.record(
                    "queued", start_s=queued_at, duration_s=time.time() - queued_at,
                    parent=root, kind="lifecycle",
                )
            try:
                if use_cache:
                    hit = self.cache.get(query)
                    if hit is not None:
                        elapsed = time.perf_counter() - started
                        self.metrics.record_completed(elapsed, cached=True)
                        root.set("cached", True)
                        return hit
                fingerprint = self.cache.fingerprint()
                result, plan = self._execute_uncached(query, cast_method, chunk_size)
                if use_cache:
                    # put() refuses the entry if any engine (including ones this
                    # very query mutated) or the catalog moved past `fingerprint`.
                    self.cache.put(query, result, fingerprint)
                elapsed = time.perf_counter() - started
                self.metrics.record_completed(elapsed, cached=False)
                if self.slow_queries.enabled:
                    self.slow_queries.observe(query, elapsed)
                self._observe(query, plan, elapsed)
                return result
            except Exception:
                self.metrics.record_failed()
                raise

    def _execute_uncached(self, query: str, cast_method: str,
                          chunk_size: int | None) -> tuple[Relation, QueryPlan | None]:
        stripped = query.strip()
        tracer = get_tracer()
        if self.bigdawg.is_scoped(stripped):
            with tracer.span("planned", kind="lifecycle"):
                plan = self.bigdawg.plan(
                    stripped, cast_method=cast_method, chunk_size=chunk_size
                )
            execution = self.bigdawg.planner.start(plan)
            try:
                with tracer.span("executed", kind="lifecycle", steps=len(plan.steps)):
                    self._run_plan(plan, execution)
                self.metrics.record_casts_skipped(len(execution.skipped_casts))
                return execution.finish(), plan
            finally:
                execution.cleanup()
        island = self.bigdawg._choose_island(stripped)
        engines = self._referenced_engines(stripped)
        if not engines:
            members = island.member_engines()
            if members:
                engines = {members[0].name.lower()}
        with tracer.span("executed", kind="lifecycle"):
            with ExitStack() as stack:
                with tracer.span("admitted", kind="lifecycle",
                                 engines=",".join(sorted(engines))):
                    stack.enter_context(self.admission.admit(engines))
                self._dispatch_delay()
                return island.execute(stripped), None

    def _run_plan(self, plan: QueryPlan, execution: PlanExecution) -> None:
        """Run steps in dependency waves; a wave's steps run on parallel threads."""
        dependencies = plan.step_dependencies()
        completed: set[int] = set()
        remaining = set(range(len(plan.steps)))
        while remaining:
            ready = sorted(i for i in remaining if dependencies[i] <= completed)
            if not ready:
                raise PlanningError("plan dependencies contain a cycle")
            if len(ready) == 1 or not self.parallel_steps:
                for index in ready:
                    self._run_admitted_step(execution, plan, index)
            else:
                errors: list[BaseException] = []
                # Wave threads are raw Threads, not pool workers: carry the
                # query's trace context across explicitly so step spans nest
                # under the submitting query's "executed" span.
                ctx = capture_context()

                def run(index: int) -> None:
                    try:
                        with_context(ctx, self._run_admitted_step, execution, plan, index)
                    except BaseException as exc:  # noqa: BLE001 - re-raised below
                        errors.append(exc)

                threads = [
                    threading.Thread(target=run, args=(index,), daemon=True)
                    for index in ready
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                if errors:
                    raise errors[0]
            completed.update(ready)
            remaining.difference_update(ready)

    def _run_admitted_step(self, execution: PlanExecution, plan: QueryPlan,
                           index: int) -> None:
        engines = self._step_engines(plan.steps[index])
        tracer = get_tracer()
        with tracer.span("plan_step", kind="step",
                         step=plan.steps[index].describe()):
            with ExitStack() as stack:
                with tracer.span("admitted", kind="lifecycle",
                                 engines=",".join(sorted(engines))):
                    stack.enter_context(self.admission.admit(engines))
                self._dispatch_delay()
                execution.run_step(index)

    def _dispatch_delay(self) -> None:
        if self.engine_latency > 0:
            time.sleep(self.engine_latency)

    # ------------------------------------------------------- engine discovery
    def _step_engines(self, step: object) -> set[str]:
        """The engines a plan step will touch, for admission control."""
        if isinstance(step, CastStep):
            engines = {step.target_engine.lower()}
            try:
                engines.add(self.bigdawg.catalog.locate(step.object_name).engine_name)
            except ObjectNotFoundError:
                pass
            return engines
        scope = getattr(step, "scope", None)
        if scope is None:  # pragma: no cover - defensive
            return set()
        engines = self._referenced_engines(scope.body_without_casts)
        if isinstance(step, BindingStep):
            # The materialization writes into the temp engine: admit there
            # too, so binding writes stay inside that engine's slot budget.
            engines.add(self.bigdawg.temp_engine().name.lower())
        return engines

    def _referenced_engines(self, text: str) -> set[str]:
        """Engines storing any catalog object the query text mentions."""
        catalog = self.bigdawg.catalog
        engines: set[str] = set()
        for token in set(_IDENTIFIER_RE.findall(text)):
            try:
                engines.add(catalog.locate(token).engine_name)
            except ObjectNotFoundError:
                continue
        return engines

    # -------------------------------------------------------------- monitoring
    def _observe(self, query: str, plan: QueryPlan | None, elapsed: float) -> None:
        """Feed the execution monitor so the advisor learns from live traffic."""
        try:
            if plan is not None and plan.steps:
                final = plan.steps[-1]
                scope = getattr(final, "scope", None)
                island = scope.island if scope is not None else "auto"
                body = scope.body_without_casts if scope is not None else query
            else:
                island, body = "auto", query
            catalog = self.bigdawg.catalog
            for token in _IDENTIFIER_RE.findall(body):
                try:
                    location = catalog.locate(token)
                except ObjectNotFoundError:
                    continue
                self.bigdawg.monitor.record(
                    f"runtime_{island}", location.name, location.engine_name, elapsed
                )
                return
        except BigDawgError:  # pragma: no cover - observation must never fail a query
            pass


class RuntimeSession:
    """A per-client handle: counts its traffic and scopes its temporaries.

    Any temporary materialized through :meth:`materialize` lives until the
    session closes (use it as a context manager), at which point it is
    dropped from both its engine and the catalog — per-query WITH bindings
    are already scoped to their plan execution and need no session help.
    """

    def __init__(self, runtime: PolystoreRuntime, session_id: int) -> None:
        self.runtime = runtime
        self.id = session_id
        self.queries_submitted = 0
        self._temporaries: list[str] = []
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------ query
    def submit(self, query: str, **options: object) -> "Future[Relation]":
        self._check_open()
        with self._lock:
            self.queries_submitted += 1
        return self.runtime.submit(query, **options)  # type: ignore[arg-type]

    def execute(self, query: str, **options: object) -> Relation:
        return self.submit(query, **options).result()

    # ------------------------------------------------------------- temporaries
    def materialize(self, name: str, relation: Relation) -> str:
        """Store a relation as a session-scoped temporary table."""
        self._check_open()
        physical = f"{name}__s{self.id}"
        self.runtime.bigdawg.materialize_temporary(physical, relation)
        with self._lock:
            self._temporaries.append(physical)
        return physical

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        with self._lock:
            temporaries, self._temporaries = self._temporaries, []
        for name in temporaries:
            self.runtime.bigdawg.drop_temporary(name)

    def __enter__(self) -> "RuntimeSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(f"session {self.id} is closed")


__all__ = ["PolystoreRuntime", "RuntimeSession"]
