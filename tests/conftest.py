"""Shared fixtures: a small deterministic MIMIC deployment reused across tests."""

from __future__ import annotations

import pytest

from repro.mimic import MimicGenerator, build_polystore
from repro.mimic.generator import MimicDataset


SMALL_GENERATOR = MimicGenerator(
    patient_count=60,
    waveform_patients=3,
    waveform_samples=1000,
    sample_rate_hz=50.0,
    anomaly_fraction=1.0,
    seed=42,
)


@pytest.fixture(scope="session")
def mimic_dataset() -> MimicDataset:
    """A small synthetic MIMIC II dataset (generated once per test session)."""
    return SMALL_GENERATOR.generate()


@pytest.fixture()
def deployment(mimic_dataset):
    """A freshly loaded polystore over the shared dataset (per test, engines are mutable)."""
    return build_polystore(dataset=mimic_dataset)
