"""Tests for the complex-analytics algorithms and their polystore runner."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics import (
    AnalyticsRunner,
    dominant_frequency,
    fft_spectrum,
    kmeans,
    linear_regression,
    pagerank,
    pca,
    power_iteration,
)


class TestRegression:
    def test_recovers_known_coefficients(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(500, 2))
        y = 3.0 * X[:, 0] - 2.0 * X[:, 1] + 5.0 + rng.normal(0, 0.01, 500)
        fit = linear_regression(X, y)
        np.testing.assert_allclose(fit.coefficients, [3.0, -2.0], atol=0.01)
        assert fit.intercept == pytest.approx(5.0, abs=0.01)
        assert fit.r_squared > 0.999
        predictions = fit.predict(X[:5])
        np.testing.assert_allclose(predictions, y[:5], atol=0.1)

    def test_single_feature_and_shape_errors(self):
        fit = linear_regression(np.array([1.0, 2.0, 3.0]), np.array([2.0, 4.0, 6.0]))
        assert fit.coefficients[0] == pytest.approx(2.0)
        with pytest.raises(ValueError):
            linear_regression(np.zeros((3, 1)), np.zeros(4))


class TestPca:
    def test_components_capture_variance_direction(self):
        rng = np.random.default_rng(1)
        base = rng.normal(size=(400, 1))
        data = np.hstack([base, base * 2 + rng.normal(0, 0.01, size=(400, 1))])
        result = pca(data, n_components=1)
        assert result.explained_variance_ratio[0] > 0.99
        direction = np.abs(result.components[0])
        assert direction[1] > direction[0]  # the second column has twice the spread

    def test_transform_centers_data(self):
        data = np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
        result = pca(data)
        transformed = result.transform(data)
        np.testing.assert_allclose(transformed.mean(axis=0), 0.0, atol=1e-9)

    def test_requires_matrix(self):
        with pytest.raises(ValueError):
            pca(np.arange(5))


class TestKMeans:
    def test_separates_well_separated_clusters(self):
        rng = np.random.default_rng(2)
        a = rng.normal(0, 0.2, size=(50, 2))
        b = rng.normal(5, 0.2, size=(50, 2))
        result = kmeans(np.vstack([a, b]), k=2, seed=3)
        labels_a = set(result.labels[:50])
        labels_b = set(result.labels[50:])
        assert len(labels_a) == 1 and len(labels_b) == 1 and labels_a != labels_b
        assert result.inertia < 50

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(4)
        data = rng.normal(size=(60, 2))
        first = kmeans(data, k=3, seed=9)
        second = kmeans(data, k=3, seed=9)
        np.testing.assert_allclose(first.centroids, second.centroids)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((3, 2)), k=0)
        with pytest.raises(ValueError):
            kmeans(np.zeros((3, 2)), k=5)


class TestSpectral:
    def test_fft_and_dominant_frequency(self):
        t = np.arange(2000) / 200.0
        signal = np.sin(2 * np.pi * 7.0 * t) + 0.2 * np.sin(2 * np.pi * 20.0 * t)
        frequencies, magnitudes = fft_spectrum(signal, 200.0)
        assert frequencies.size == magnitudes.size
        assert dominant_frequency(signal, 200.0) == pytest.approx(7.0, abs=0.2)

    def test_degenerate_signal(self):
        assert dominant_frequency(np.array([1.0]), 100.0) == 0.0


class TestGraphAnalytics:
    def test_power_iteration_matches_numpy(self):
        rng = np.random.default_rng(5)
        matrix = rng.normal(size=(6, 6))
        matrix = matrix @ matrix.T  # symmetric positive semi-definite
        eigenvalue, _vector = power_iteration(matrix)
        expected = max(np.linalg.eigvalsh(matrix))
        assert eigenvalue == pytest.approx(expected, rel=1e-4)

    def test_power_iteration_requires_square(self):
        with pytest.raises(ValueError):
            power_iteration(np.zeros((2, 3)))

    def test_pagerank_sums_to_one_and_ranks_hub_highest(self):
        adjacency = np.array(
            [
                [0, 1, 1, 1],
                [0, 0, 1, 0],
                [0, 1, 0, 0],
                [0, 1, 1, 0],
            ],
            dtype=float,
        )
        ranks = pagerank(adjacency)
        assert ranks.sum() == pytest.approx(1.0)
        assert ranks[0] == pytest.approx(ranks.min())  # nothing links to node 0


class TestAnalyticsRunner:
    def test_runner_over_polystore(self, deployment):
        runner = AnalyticsRunner(deployment.bigdawg)
        matrix = runner.waveform_matrix("waveform_history")
        assert matrix.shape[0] == len(deployment.dataset.waveforms)
        fit = runner.regression(
            "SELECT a.severity, p.age, a.stay_days FROM admissions a "
            "JOIN patients p ON a.patient_id = p.patient_id",
            ["a.severity", "p.age"], "a.stay_days",
        )
        assert 0.0 <= fit.r_squared <= 1.0
        frequency = runner.waveform_dominant_frequency("waveform_history", 0, 50.0)
        assert 0.5 <= frequency <= 5.0  # a plausible heart-rate fundamental
        clusters = runner.patient_clusters(
            "SELECT age, stay_days FROM patients p JOIN admissions a ON p.patient_id = a.patient_id",
            ["age", "stay_days"], k=2,
        )
        assert set(clusters.labels) == {0, 1}
        components = runner.patient_pca(
            "SELECT age, stay_days, severity FROM patients p JOIN admissions a "
            "ON p.patient_id = a.patient_id",
            ["age", "stay_days", "severity"], n_components=2,
        )
        assert components.components.shape[0] == 2


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 30), st.floats(-5, 5), st.floats(-5, 5))
def test_property_regression_on_exact_line_is_perfect(n, slope, intercept):
    """Property: regression on noise-free data recovers the line with r^2 == 1."""
    x = np.linspace(0, 10, n)
    y = slope * x + intercept
    fit = linear_regression(x, y)
    assert fit.r_squared == pytest.approx(1.0)
    assert fit.coefficients[0] == pytest.approx(slope, abs=1e-6)
