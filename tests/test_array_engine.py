"""Tests for the array engine: schemas, storage, operators, AFL, linear algebra."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import (
    DuplicateObjectError,
    ExecutionError,
    ObjectNotFoundError,
    ParseError,
    SchemaError,
)
from repro.engines.array import ArrayEngine, ArraySchema, Attribute, Dimension, StoredArray
from repro.engines.array import linalg
from repro.engines.array import operators as ops
from repro.engines.array.aql import parse_aql


# ------------------------------------------------------------------- schema
class TestArraySchema:
    def test_dimension_validation(self):
        with pytest.raises(SchemaError):
            Dimension("i", 10, 5, 4)
        with pytest.raises(SchemaError):
            Dimension("i", 0, 5, 0)

    def test_dimension_chunking(self):
        dim = Dimension("i", 0, 99, 25)
        assert dim.length == 100
        assert dim.chunk_count == 4
        assert dim.chunk_of(0) == 0
        assert dim.chunk_of(99) == 3
        assert dim.chunk_bounds(3) == (75, 99)
        with pytest.raises(SchemaError):
            dim.chunk_of(100)

    def test_schema_invariants(self):
        dims = [Dimension("i", 0, 9, 5)]
        attrs = [Attribute("value", "float")]
        schema = ArraySchema("a", dims, attrs)
        assert schema.shape == (10,)
        assert schema.cell_count == 10
        with pytest.raises(SchemaError):
            ArraySchema("a", [], attrs)
        with pytest.raises(SchemaError):
            ArraySchema("a", dims, [])
        with pytest.raises(SchemaError):
            ArraySchema("a", dims, [Attribute("i", "float")])  # name collision

    def test_coordinate_translation_and_chunks(self):
        schema = ArraySchema(
            "a",
            [Dimension("x", 10, 19, 5), Dimension("y", 0, 9, 5)],
            [Attribute("v", "float")],
        )
        assert schema.coordinates_to_indexes((10, 0)) == (0, 0)
        assert schema.coordinates_to_indexes((19, 9)) == (9, 9)
        with pytest.raises(SchemaError):
            schema.coordinates_to_indexes((9, 0))
        chunks = list(schema.chunks())
        assert len(chunks) == 4
        assert schema.chunk_slices((1, 1)) == (slice(5, 10), slice(5, 10))


# ------------------------------------------------------------------- storage
@pytest.fixture()
def small_array() -> StoredArray:
    schema = ArraySchema(
        "waves",
        [Dimension("signal", 0, 2, 1), Dimension("sample", 0, 99, 25)],
        [Attribute("value", "float")],
    )
    array = StoredArray(schema)
    rng = np.random.default_rng(1)
    for signal in range(3):
        array.write_block("value", (signal, 0), rng.normal(signal, 0.5, size=(1, 100)))
    return array


class TestStoredArray:
    def test_cell_roundtrip(self, small_array):
        small_array.write_cell((0, 5), {"value": 42.0})
        assert small_array.read_cell((0, 5))["value"] == 42.0
        assert small_array.populated_cells == 300

    def test_empty_cell_read(self):
        schema = ArraySchema("a", [Dimension("i", 0, 3, 2)], [Attribute("v", "float")])
        array = StoredArray(schema)
        assert array.read_cell((0,)) is None

    def test_block_bounds_checked(self, small_array):
        with pytest.raises(SchemaError):
            small_array.write_block("value", (0, 95), np.ones((1, 10)))

    def test_read_block(self, small_array):
        block = small_array.read_block("value", (1, 10), (1, 19))
        assert block.shape == (1, 10)

    def test_iter_cells_yields_coordinates(self, small_array):
        cells = list(small_array.iter_cells())
        assert len(cells) == 300
        coordinates, values = cells[0]
        assert len(coordinates) == 2 and "value" in values

    def test_synopsis_counts_and_bounds(self, small_array):
        synopses = small_array.synopsis("value")
        assert len(synopses) == 3 * 4  # 3 signal chunks x 4 sample chunks
        total = sum(s.count for s in synopses)
        assert total == 300
        for s in synopses:
            if s.count:
                assert s.minimum <= s.mean <= s.maximum

    def test_synopsis_rejects_text_attribute(self):
        schema = ArraySchema("a", [Dimension("i", 0, 1, 1)], [Attribute("label", "text")])
        array = StoredArray(schema)
        from repro.common.errors import UnsupportedOperationError

        with pytest.raises(UnsupportedOperationError):
            array.synopsis("label")


# ------------------------------------------------------------------ operators
class TestOperators:
    def test_filter(self, small_array):
        filtered = ops.filter_array(small_array, "value", lambda buf: buf > 1.0)
        values = filtered.buffer("value")[filtered.present_mask]
        assert (values > 1.0).all()
        assert filtered.populated_cells < small_array.populated_cells

    def test_between_keeps_dimension_space(self, small_array):
        boxed = ops.between(small_array, (0, 0), (0, 9))
        assert boxed.schema.shape == small_array.schema.shape
        assert boxed.populated_cells == 10

    def test_subarray_reorigins(self, small_array):
        sub = ops.subarray(small_array, (1, 10), (2, 29))
        assert sub.schema.shape == (2, 20)
        assert sub.populated_cells == 40

    def test_apply_adds_attribute(self, small_array):
        applied = ops.apply(small_array, "scaled", "float", lambda v: v * 2.0, "value")
        assert applied.schema.has_attribute("scaled")
        np.testing.assert_allclose(
            applied.buffer("scaled"), np.asarray(small_array.buffer("value")) * 2.0
        )
        with pytest.raises(SchemaError):
            ops.apply(applied, "scaled", "float", lambda v: v, "value")

    def test_project(self, small_array):
        applied = ops.apply(small_array, "scaled", "float", lambda v: v * 2.0, "value")
        projected = ops.project(applied, ["scaled"])
        assert [a.name for a in projected.schema.attributes] == ["scaled"]

    def test_aggregate_matches_numpy(self, small_array):
        values = small_array.buffer("value")[small_array.present_mask]
        result = ops.aggregate(small_array, "value", ["count", "sum", "avg", "min", "max", "stddev"])
        assert result["count"] == values.size
        assert result["avg"] == pytest.approx(values.mean())
        assert result["stddev"] == pytest.approx(values.std(ddof=1))

    def test_aggregate_by_dimension(self, small_array):
        by_signal = ops.aggregate_by_dimension(small_array, "value", "signal", "avg")
        assert set(by_signal) == {0, 1, 2}
        # Signals were generated around means 0, 1 and 2.
        assert by_signal[0] < by_signal[1] < by_signal[2]

    def test_window_trailing_average(self):
        schema = ArraySchema("s", [Dimension("i", 0, 4, 5)], [Attribute("v", "float")])
        array = StoredArray(schema)
        array.write_block("v", (0,), np.array([1.0, 2.0, 3.0, 4.0, 5.0]))
        windowed = ops.window(array, "v", 2, "avg")
        np.testing.assert_allclose(
            windowed.buffer("avg_v"), [1.0, 1.5, 2.5, 3.5, 4.5]
        )
        maxed = ops.window(array, "v", 3, "max")
        np.testing.assert_allclose(maxed.buffer("max_v"), [1, 2, 3, 4, 5])

    def test_regrid_downsamples(self, small_array):
        coarse = ops.regrid(small_array, "value", (1, 10), "avg")
        assert coarse.schema.shape == (3, 10)
        fine = np.asarray(small_array.buffer("value"))
        np.testing.assert_allclose(
            coarse.buffer("avg_value")[0, 0], fine[0, :10].mean()
        )

    def test_cross_join_requires_same_shape(self, small_array):
        other_schema = ArraySchema("o", [Dimension("i", 0, 1, 1)], [Attribute("v", "float")])
        with pytest.raises(SchemaError):
            ops.cross_join(small_array, StoredArray(other_schema))

    def test_unknown_aggregate_rejected(self, small_array):
        from repro.common.errors import UnsupportedOperationError

        with pytest.raises(UnsupportedOperationError):
            ops.aggregate(small_array, "value", ["median"])


# ------------------------------------------------------------------------ AFL
class TestAql:
    def test_parse_simple_and_nested(self):
        call = parse_aql("aggregate(filter(waves, value > 0.5), count(value))")
        assert call.operator == "aggregate"
        assert call.source.operator == "filter"
        assert call.source.source == "waves"

    def test_parse_errors(self):
        with pytest.raises(ParseError):
            parse_aql("not a call")
        with pytest.raises(ParseError):
            parse_aql("filter(waves, value > 1")
        with pytest.raises(ParseError):
            parse_aql("scan(waves) trailing")


class TestArrayEngine:
    @pytest.fixture()
    def engine(self, small_array) -> ArrayEngine:
        e = ArrayEngine("scidb")
        e.register("waves", small_array)
        return e

    def test_load_numpy_and_duplicate(self, engine):
        engine.load_numpy("m", np.arange(12).reshape(3, 4))
        assert engine.array("m").schema.shape == (3, 4)
        with pytest.raises(DuplicateObjectError):
            engine.load_numpy("m", np.zeros(2), replace=False)

    def test_execute_filter_aggregate_window_regrid(self, engine):
        result = engine.execute("aggregate(waves, count(value))")
        assert result["count(value)"] == 300.0
        filtered = engine.execute("filter(waves, value > 1.0)")
        assert isinstance(filtered, StoredArray)
        grouped = engine.execute("aggregate(waves, avg(value), signal)")
        assert set(grouped) == {0, 1, 2}
        windowed = engine.execute("window(waves, value, 4, avg, sample)")
        assert windowed.schema.shape == (3, 100)
        coarse = engine.execute("regrid(waves, value, 1, 25, max)")
        assert coarse.schema.shape == (3, 4)
        boxed = engine.execute("aggregate(between(waves, 0, 0, 0, 9), count(value))")
        assert boxed["count(value)"] == 10.0

    def test_execute_apply_and_project(self, engine):
        applied = engine.execute("apply(waves, doubled, value * 2)")
        assert applied.schema.has_attribute("doubled")
        projected = engine.execute("project(waves, value)")
        assert [a.name for a in projected.schema.attributes] == ["value"]

    def test_execute_errors(self, engine):
        with pytest.raises(ObjectNotFoundError):
            engine.execute("scan(missing)")
        with pytest.raises(ExecutionError):
            engine.execute("between(waves, 0, 0)")
        with pytest.raises(ParseError):
            engine.execute("filter(waves, value >>> 3)")

    def test_export_import_roundtrip(self, engine):
        relation = engine.export_relation("waves")
        assert relation.schema.names == ["signal", "sample", "value"]
        other = ArrayEngine("copy")
        other.import_relation("waves", relation, dimensions=["signal", "sample"])
        original = engine.execute("aggregate(waves, sum(value))")["sum(value)"]
        copied = other.execute("aggregate(waves, sum(value))")["sum(value)"]
        assert copied == pytest.approx(original)

    def test_drop(self, engine):
        engine.drop_object("waves")
        assert not engine.has_object("waves")
        with pytest.raises(ObjectNotFoundError):
            engine.drop_object("waves")


# --------------------------------------------------------------------- linalg
class TestLinalg:
    def test_multiply_and_transpose(self):
        a = linalg.from_matrix("a", np.array([[1.0, 2.0], [3.0, 4.0]]))
        b = linalg.from_matrix("b", np.eye(2))
        product = linalg.multiply(a, b)
        np.testing.assert_allclose(linalg.to_matrix(product, "value"), [[1, 2], [3, 4]])
        transposed = linalg.transpose(a)
        np.testing.assert_allclose(linalg.to_matrix(transposed, "value"), [[1, 3], [2, 4]])

    def test_covariance_and_svd(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(50, 3))
        stored = linalg.from_matrix("d", data)
        cov = linalg.to_matrix(linalg.covariance(stored), "value")
        np.testing.assert_allclose(cov, np.cov(data, rowvar=False), atol=1e-9)
        _u, s, _vt = linalg.svd(stored)
        assert (np.diff(s) <= 0).all()

    def test_power_iteration_finds_dominant_eigenvalue(self):
        matrix = np.diag([5.0, 2.0, 1.0])
        stored = linalg.from_matrix("m", matrix)
        eigenvalue, vector = linalg.power_iteration(stored)
        assert eigenvalue == pytest.approx(5.0, rel=1e-6)
        assert abs(vector[0]) == pytest.approx(1.0, rel=1e-3)

    def test_fft_magnitudes_peak_at_signal_frequency(self):
        t = np.arange(1000) / 100.0
        signal = np.sin(2 * np.pi * 5.0 * t)
        stored = linalg.from_matrix("s", signal)
        magnitudes = linalg.fft_magnitudes(stored)
        frequencies = np.fft.rfftfreq(1000, d=0.01)
        assert frequencies[int(np.argmax(magnitudes[1:])) + 1] == pytest.approx(5.0, abs=0.2)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(-100, 100), min_size=4, max_size=60))
def test_property_window_avg_bounded_by_extremes(values):
    """Property: a trailing-window average never exceeds the running min/max."""
    data = np.array(values, dtype=float)
    schema = ArraySchema("s", [Dimension("i", 0, len(data) - 1, max(1, len(data)))],
                         [Attribute("v", "float")])
    array = StoredArray(schema)
    array.write_block("v", (0,), data)
    windowed = ops.window(array, "v", 3, "avg").buffer("avg_v")
    assert (windowed <= data.max() + 1e-9).all()
    assert (windowed >= data.min() - 1e-9).all()
