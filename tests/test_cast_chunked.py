"""Tests for the chunked streaming CAST pipeline and its regression fixes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import CastError, ObjectNotFoundError
from repro.common.schema import Relation, Schema
from repro.common.serialization import BinaryCodec, CsvCodec
from repro.core.bigdawg import BigDawg
from repro.core.cast import CastMigrator
from repro.core.catalog import BigDawgCatalog, ObjectLocation
from repro.core.query.planner import CastStep
from repro.engines.array import ArrayEngine
from repro.engines.base import DEFAULT_CHUNK_ROWS
from repro.engines.keyvalue import KeyValueEngine
from repro.engines.relational import RelationalEngine


SCHEMA = Schema([("sample_index", "integer"), ("signal_id", "integer"), ("value", "float")])


def _relation(rows: int) -> Relation:
    return Relation(SCHEMA, [[i, i % 4, (i % 97) * 0.25] for i in range(rows)])


def _catalog(rows: int) -> BigDawgCatalog:
    catalog = BigDawgCatalog()
    postgres = RelationalEngine("postgres")
    scidb = ArrayEngine("scidb")
    accumulo = KeyValueEngine("accumulo")
    catalog.register_engine(postgres, ["relational"])
    catalog.register_engine(scidb, ["array"])
    catalog.register_engine(accumulo, ["text"])
    postgres.import_relation("waveform_rows", _relation(rows))
    catalog.register_object("waveform_rows", "postgres", "table")
    return catalog


# ------------------------------------------------------------ engine chunk API
class TestEngineChunkApi:
    def test_relational_export_chunk_sizes(self):
        catalog = _catalog(10)
        chunks = list(catalog.engine("postgres").export_chunks("waveform_rows", 4))
        assert [len(c) for c in chunks] == [4, 4, 2]

    def test_export_schema_matches_export_relation(self):
        catalog = _catalog(5)
        postgres = catalog.engine("postgres")
        scidb = catalog.engine("scidb")
        accumulo = catalog.engine("accumulo")
        scidb.load_numpy("waves", np.arange(6, dtype=float).reshape(2, 3))
        accumulo.create_table("notes")
        accumulo.put("notes", "r1", "attr", "q1", "hello")
        for engine, obj in ((postgres, "waveform_rows"), (scidb, "waves"), (accumulo, "notes")):
            assert engine.export_schema(obj) == engine.export_relation(obj).schema

    def test_array_and_keyvalue_export_chunks(self):
        catalog = _catalog(0)
        scidb = catalog.engine("scidb")
        scidb.load_numpy("waves", np.arange(12, dtype=float).reshape(3, 4))
        chunks = list(scidb.export_chunks("waves", 5))
        assert [len(c) for c in chunks] == [5, 5, 2]
        accumulo = catalog.engine("accumulo")
        accumulo.create_table("notes")
        for i in range(7):
            accumulo.put("notes", f"r{i}", "attr", "q", f"v{i}")
        chunks = list(accumulo.export_chunks("notes", 3))
        assert [len(c) for c in chunks] == [3, 3, 1]

    def test_import_chunks_equivalent_to_import_relation(self):
        catalog = _catalog(10)
        postgres = catalog.engine("postgres")
        source = postgres.export_relation("waveform_rows")
        chunks = postgres.export_chunks("waveform_rows", 3)
        postgres.import_chunks("copy_chunked", source.schema, chunks)
        assert postgres.export_relation("copy_chunked") == source

    def test_invalid_chunk_size_rejected(self):
        catalog = _catalog(3)
        with pytest.raises(ValueError):
            list(catalog.engine("postgres").export_chunks("waveform_rows", 0))

    def test_keyvalue_value_type_tracking(self):
        catalog = _catalog(0)
        accumulo = catalog.engine("accumulo")
        accumulo.create_table("mixed")
        accumulo.put("mixed", "r1", "attr", "q", 1)
        accumulo.put("mixed", "r2", "attr", "q", 0.5)
        from repro.common.types import DataType

        assert accumulo.export_schema("mixed").column("value").dtype is DataType.FLOAT
        # Unclassifiable values still store and fall back to TEXT exports.
        accumulo.put("mixed", "r3", "attr", "q", b"raw-bytes")
        assert accumulo.export_schema("mixed").column("value").dtype is DataType.TEXT

    def test_keyvalue_out_of_band_store_writes_widen_schema(self):
        # Values written directly into the store (behind the table's put)
        # must still be reflected in the export schema.
        from repro.common.types import DataType

        catalog = _catalog(0)
        accumulo = catalog.engine("accumulo")
        table = accumulo.create_table("oob")
        table.put("r1", "attr", "q", 1)
        table.store.put("r2", "attr", "q", 0.5)  # behind the table's back
        assert accumulo.export_schema("oob").column("value").dtype is DataType.FLOAT
        assert len(accumulo.export_relation("oob")) == 2

    def test_keyvalue_schema_narrows_after_out_of_band_deletion(self):
        # The rescan must not seed from the stale cached type, or the value
        # column stays TEXT forever after the only TEXT entry is removed.
        from repro.common.types import DataType

        catalog = _catalog(0)
        accumulo = catalog.engine("accumulo")
        table = accumulo.create_table("shrink")
        table.put("r1", "attr", "q", "hello")
        assert accumulo.export_schema("shrink").column("value").dtype is DataType.TEXT
        # Replace the TEXT entry behind the table's back, leaving one integer
        # (balanced delete+put: the store length is unchanged).
        table.store.delete("r1")
        table.store.put("r2", "attr", "q", 5)
        assert accumulo.export_schema("shrink").column("value").dtype is DataType.INTEGER

    def test_fallback_engine_exports_only_once_per_cast(self):
        # Engines without native chunk support must not export the relation
        # twice (once for the schema, once for the chunks).
        from repro.engines.base import Engine, EngineCapability

        class CountingEngine(Engine):
            kind = "relational"

            def __init__(self, name):
                super().__init__(name)
                self.relation = _relation(10)
                self.exports = 0

            @property
            def capabilities(self):
                return EngineCapability.NONE

            def list_objects(self):
                return ["obj"]

            def has_object(self, name):
                return name == "obj"

            def export_relation(self, name):
                self.exports += 1
                return self.relation

            def import_relation(self, name, relation, **options):
                pass

            def drop_object(self, name):
                pass

        catalog = BigDawgCatalog()
        counting = CountingEngine("legacy")
        catalog.register_engine(counting, ["relational"])
        catalog.register_engine(KeyValueEngine("accumulo"), ["text"])
        catalog.register_object("obj", "legacy", "table")
        record = CastMigrator(catalog).cast("obj", "accumulo", chunk_size=4)
        assert record.rows == 10 and record.chunks == 3
        assert counting.exports == 1

    def test_export_stream_honours_partial_overrides(self):
        # An engine overriding only export_chunks (the documented extension
        # point) must have its override used on the CAST path.
        from repro.engines.base import Engine, EngineCapability

        class ChunkOnlyEngine(Engine):
            kind = "relational"

            def __init__(self, name):
                super().__init__(name)
                self.native_chunk_calls = 0
                self.full_exports = 0

            @property
            def capabilities(self):
                return EngineCapability.NONE

            def list_objects(self):
                return ["obj"]

            def has_object(self, name):
                return name == "obj"

            def export_relation(self, name):
                self.full_exports += 1
                return _relation(6)

            def export_chunks(self, name, chunk_size=4):
                self.native_chunk_calls += 1
                relation = _relation(6)
                for start in range(0, len(relation), chunk_size):
                    chunk = Relation(SCHEMA)
                    chunk.rows.extend(relation.rows[start : start + chunk_size])
                    yield chunk

            def import_relation(self, name, relation, **options):
                pass

            def drop_object(self, name):
                pass

        engine = ChunkOnlyEngine("partial")
        schema, chunks = engine.export_stream("obj", 4)
        assert schema.names == SCHEMA.names
        assert [len(c) for c in chunks] == [4, 2]
        assert engine.native_chunk_calls == 1
        # The schema came from the first chunk, not a full-export fallback.
        assert engine.full_exports == 0


# ------------------------------------------------------------- chunk pipeline
class TestChunkedCast:
    @pytest.mark.parametrize("rows,chunk_size,expected_chunks", [
        (0, 5, 0),       # empty object: nothing on the wire
        (1, 5, 1),       # single row
        (5, 5, 1),       # exactly one chunk
        (6, 5, 2),       # one row spills into a second chunk
        (17, 5, 4),
    ])
    def test_chunk_boundary_row_counts(self, rows, chunk_size, expected_chunks):
        catalog = _catalog(rows)
        migrator = CastMigrator(catalog)
        record = migrator.cast(
            "waveform_rows", "accumulo", method="binary", chunk_size=chunk_size
        )
        assert record.rows == rows
        assert record.chunks == expected_chunks
        assert record.chunk_size == chunk_size
        moved = catalog.engine("accumulo").export_relation("waveform_rows")
        # Each source row becomes two kv cells (signal_id + value).
        assert len(moved) == rows * 2

    @pytest.mark.parametrize("method", ["binary", "csv", "direct"])
    def test_all_methods_move_identical_content(self, method):
        catalog = _catalog(23)
        migrator = CastMigrator(catalog)
        migrator.cast("waveform_rows", "accumulo", method=method,
                      chunk_size=7, target_name=f"via_{method}")
        moved = catalog.engine("accumulo").export_relation(f"via_{method}")
        assert len(moved) == 46

    def test_default_chunk_size_used_when_unspecified(self):
        catalog = _catalog(4)
        record = CastMigrator(catalog).cast("waveform_rows", "accumulo")
        assert record.chunk_size == DEFAULT_CHUNK_ROWS

    def test_nonpositive_chunk_size_rejected(self):
        catalog = _catalog(4)
        with pytest.raises(CastError):
            CastMigrator(catalog).cast("waveform_rows", "accumulo", chunk_size=0)

    def test_csv_tempfile_staging_per_chunk(self):
        catalog = _catalog(12)
        migrator = CastMigrator(catalog)
        record = migrator.cast(
            "waveform_rows", "accumulo", method="csv", use_tempfile=True, chunk_size=5
        )
        assert record.chunks == 3 and record.rows == 12
        assert record.bytes_moved > 0
        moved = catalog.engine("accumulo").export_relation("waveform_rows")
        assert len(moved) == 24

    def test_cast_into_array_engine_chunked(self):
        catalog = _catalog(20)
        migrator = CastMigrator(catalog)
        record = migrator.cast(
            "waveform_rows", "scidb", method="binary", chunk_size=6,
            dimensions=["sample_index"],
        )
        assert record.chunks == 4
        array = catalog.engine("scidb").array("waveform_rows")
        assert array.schema.dimensions[0].name == "sample_index"
        assert array.populated_cells == 20

    def test_direct_method_moves_no_bytes(self):
        catalog = _catalog(9)
        record = CastMigrator(catalog).cast(
            "waveform_rows", "accumulo", method="direct", chunk_size=4
        )
        assert record.bytes_moved == 0 and record.peak_chunk_bytes == 0
        assert record.rows == 9 and record.chunks == 3

    def test_pipeline_interleaves_encode_and_decode(self, monkeypatch):
        """Frames are decoded as they are produced: never two frames in memory."""
        events = []
        original_encode = BinaryCodec.encode
        original_decode = BinaryCodec.decode

        def spy_encode(self, relation):
            events.append("encode")
            return original_encode(self, relation)

        def spy_decode(self, payload, schema):
            events.append("decode")
            return original_decode(self, payload, schema)

        monkeypatch.setattr(BinaryCodec, "encode", spy_encode)
        monkeypatch.setattr(BinaryCodec, "decode", spy_decode)
        catalog = _catalog(12)
        CastMigrator(catalog).cast("waveform_rows", "accumulo", chunk_size=4)
        assert events == ["encode", "decode"] * 3


# --------------------------------------------------------------- accounting
class TestChunkAccounting:
    def test_bytes_moved_sums_per_chunk_frames(self):
        catalog = _catalog(13)
        migrator = CastMigrator(catalog)
        record = migrator.cast("waveform_rows", "accumulo", method="binary", chunk_size=5)
        codec = BinaryCodec()
        frames = [
            codec.encode(chunk)
            for chunk in catalog.engine("postgres").export_chunks("waveform_rows", 5)
        ]
        assert record.bytes_moved == sum(len(f) for f in frames)
        assert record.peak_chunk_bytes == max(len(f) for f in frames)
        assert record.peak_chunk_bytes < record.bytes_moved

    def test_single_chunk_matches_old_single_shot_numbers(self):
        """With one chunk the stats reduce to the pre-streaming accounting."""
        catalog = _catalog(50)
        migrator = CastMigrator(catalog)
        full = catalog.engine("postgres").export_relation("waveform_rows")
        record_bin = migrator.cast(
            "waveform_rows", "accumulo", method="binary", chunk_size=1000,
            target_name="one_shot_bin",
        )
        assert record_bin.chunks == 1
        assert record_bin.bytes_moved == len(BinaryCodec().encode(full))
        assert record_bin.peak_chunk_bytes == record_bin.bytes_moved
        record_csv = migrator.cast(
            "waveform_rows", "accumulo", method="csv", chunk_size=1000,
            target_name="one_shot_csv",
        )
        assert record_csv.bytes_moved == len(CsvCodec().encode(full))

    def test_history_totals_across_chunked_casts(self):
        catalog = _catalog(10)
        migrator = CastMigrator(catalog)
        a = migrator.cast("waveform_rows", "accumulo", chunk_size=3, target_name="a")
        b = migrator.cast("waveform_rows", "scidb", chunk_size=4, target_name="b",
                          dimensions=["sample_index"])
        assert migrator.total_bytes_moved() == a.bytes_moved + b.bytes_moved
        assert len(migrator.casts_between("postgres", "accumulo")) == 1
        assert len(migrator.casts_between("postgres", "scidb")) == 1


# --------------------------------------------------------------- regressions
class TestDropSourceWithTargetName:
    def test_catalog_tracks_renamed_moved_object(self):
        # Regression: drop_source=True with a custom target_name used to call
        # move_object(object_name, ...), leaving the catalog pointing at a
        # name that does not exist on the target engine.
        catalog = _catalog(6)
        migrator = CastMigrator(catalog)
        migrator.cast(
            "waveform_rows", "accumulo", drop_source=True, target_name="waveform_kv"
        )
        assert not catalog.engine("postgres").has_object("waveform_rows")
        assert catalog.engine("accumulo").has_object("waveform_kv")
        location = catalog.locate("waveform_kv")
        assert location.engine_name == "accumulo"
        # The old name must be gone from the catalog entirely.
        assert not catalog.has_object("waveform_rows")
        with pytest.raises(ObjectNotFoundError):
            catalog.locate("waveform_rows")

    def test_case_variant_same_engine_rename_rejected(self):
        # Regression: a case-variant target_name on the same engine passed the
        # guard (case-sensitive compare), then drop_source deleted the freshly
        # imported table (case-insensitive compare) — destroying the object.
        catalog = _catalog(6)
        migrator = CastMigrator(catalog)
        with pytest.raises(CastError):
            migrator.cast("waveform_rows", "postgres", target_name="WAVEFORM_ROWS",
                          drop_source=True)
        assert catalog.engine("postgres").has_object("waveform_rows")
        assert len(catalog.engine("postgres").export_relation("waveform_rows")) == 6

    def test_drop_source_same_name_still_moves(self):
        catalog = _catalog(6)
        CastMigrator(catalog).cast("waveform_rows", "accumulo", drop_source=True)
        assert catalog.locate("waveform_rows").engine_name == "accumulo"

    def test_rename_move_preserves_location_properties(self):
        catalog = _catalog(6)
        catalog.register_object("waveform_rows", "postgres", "table",
                                replace=True, temporary=True)
        CastMigrator(catalog).cast(
            "waveform_rows", "accumulo", drop_source=True, target_name="waveform_kv"
        )
        assert catalog.locate("waveform_kv").properties == {"temporary": True}


class TestEngineNameCaseNormalization:
    def test_object_location_normalizes_engine_name(self):
        # Regression: mixed-case engine names in an ObjectLocation caused
        # spurious re-CASTs of already-reachable objects.
        assert ObjectLocation("waves", "SciDB", "array").engine_name == "scidb"

    def test_planner_skips_cast_for_mixed_case_location(self):
        bd = BigDawg()
        bd.add_engine(RelationalEngine("postgres"), islands=["relational"])
        scidb = ArrayEngine("scidb")
        bd.add_engine(scidb, islands=["array"])
        scidb.load_numpy("waves", np.arange(6, dtype=float).reshape(2, 3))
        # Simulate an out-of-band registration that preserved the display case.
        bd.catalog._objects["waves"] = ObjectLocation("waves", "SciDB", "array")
        plan = bd.plan("ARRAY(aggregate(CAST(waves, array), avg(value)))")
        assert not any(isinstance(step, CastStep) for step in plan.steps)


# ------------------------------------------------------- planner/policy wiring
@pytest.fixture()
def bigdawg() -> BigDawg:
    bd = BigDawg()
    postgres = RelationalEngine("postgres")
    scidb = ArrayEngine("scidb")
    bd.add_engine(postgres, islands=["relational"])
    bd.add_engine(scidb, islands=["array"])
    postgres.execute("CREATE TABLE readings (id INTEGER PRIMARY KEY, value FLOAT)")
    postgres.execute(
        "INSERT INTO readings VALUES " + ", ".join(f"({i}, {i * 0.5})" for i in range(30))
    )
    bd.catalog.register_object("readings", "postgres", "table")
    return bd


class TestPolicyThreading:
    def test_execute_passes_chunk_size_to_migrator(self, bigdawg):
        bigdawg.execute(
            "ARRAY(aggregate(CAST(readings, array), avg(value)))",
            cast_method="binary", chunk_size=8,
        )
        (record,) = bigdawg.migrator.history
        assert record.chunk_size == 8 and record.chunks == 4

    def test_plan_stamps_policy_on_cast_steps(self, bigdawg):
        plan = bigdawg._planner.plan(
            "ARRAY(aggregate(CAST(readings, array), avg(value)))",
            cast_method="csv", chunk_size=16,
        )
        cast_steps = [s for s in plan.steps if isinstance(s, CastStep)]
        assert cast_steps and all(
            s.method == "csv" and s.chunk_size == 16 for s in cast_steps
        )
        assert "chunks of 16" in plan.explain()
        bigdawg._planner.execute_plan(plan)
        (record,) = bigdawg.migrator.history
        assert record.method == "csv" and record.chunk_size == 16

    def test_planning_a_cast_does_not_export_the_source(self, bigdawg):
        # Regression: _cast_options used to export the whole source relation
        # on the planning path just to inspect its schema.
        postgres = bigdawg.engine("postgres")
        calls = []
        original = postgres.export_relation
        postgres.export_relation = lambda name: (calls.append(name), original(name))[1]
        bigdawg.execute("ARRAY(aggregate(CAST(readings, array), avg(value)))")
        assert calls == []

    def test_schema_of_reflects_engine_side_ddl(self, bigdawg):
        # Regression: a cached schema must not survive drop-and-recreate DDL
        # done directly on the engine (the normal DDL path, which never
        # touches the catalog).
        first = bigdawg.catalog.schema_of("readings")
        assert first.names == ["id", "value"]
        postgres = bigdawg.engine("postgres")
        postgres.execute("DROP TABLE readings")
        postgres.execute("CREATE TABLE readings (name TEXT, value FLOAT)")
        assert bigdawg.catalog.schema_of("readings").names == ["name", "value"]

    def test_schema_of_caches_only_for_fallback_engines(self):
        from repro.engines.base import Engine, EngineCapability

        class FallbackEngine(Engine):
            kind = "relational"

            def __init__(self, name):
                super().__init__(name)
                self.exports = 0

            @property
            def capabilities(self):
                return EngineCapability.NONE

            def list_objects(self):
                return ["obj"]

            def has_object(self, name):
                return name == "obj"

            def export_relation(self, name):
                self.exports += 1
                return _relation(3)

            def import_relation(self, name, relation, **options):
                pass

            def drop_object(self, name):
                pass

        catalog = BigDawgCatalog()
        legacy = FallbackEngine("legacy")
        catalog.register_engine(legacy, ["relational"])
        catalog.register_object("obj", "legacy", "table")
        first = catalog.schema_of("obj")
        second = catalog.schema_of("obj")
        assert first == second and legacy.exports == 1
        # Re-registering the object invalidates the cached schema.
        catalog.register_object("obj", "legacy", "table", replace=True)
        catalog.schema_of("obj")
        assert legacy.exports == 2

    def test_rebalance_accepts_chunk_size_in_cast_options(self, bigdawg):
        # Regression: passing chunk_size inside cast_options used to collide
        # with rebalance's own chunk_size keyword and raise TypeError.
        monitor = bigdawg.monitor
        monitor.record("linear_algebra", "readings", "postgres", 0.5)
        monitor.record("linear_algebra", "readings", "scidb", 0.01)
        moved = bigdawg.advisor.rebalance(
            ["readings"], cast_options={"chunk_size": 10, "dimensions": ["id"]}
        )
        assert len(moved) == 1
        (record,) = bigdawg.migrator.history
        assert record.chunk_size == 10

    def test_rebalance_explicit_chunk_size_wins_over_cast_options(self, bigdawg):
        monitor = bigdawg.monitor
        monitor.record("linear_algebra", "readings", "postgres", 0.5)
        monitor.record("linear_algebra", "readings", "scidb", 0.01)
        bigdawg.advisor.rebalance(
            ["readings"], chunk_size=15,
            cast_options={"chunk_size": 10, "dimensions": ["id"]},
        )
        (record,) = bigdawg.migrator.history
        assert record.chunk_size == 15

    def test_advisor_migration_uses_chunked_pipeline(self, bigdawg):
        monitor = bigdawg.monitor
        monitor.record("linear_algebra", "readings", "postgres", 0.5)
        monitor.record("linear_algebra", "readings", "scidb", 0.01)
        recommendation = bigdawg.advisor.recommend("readings")
        assert bigdawg.advisor.apply(recommendation, chunk_size=10, dimensions=["id"])
        (record,) = bigdawg.migrator.history
        assert record.chunk_size == 10 and record.chunks == 3
        assert bigdawg.catalog.locate("readings").engine_name == "scidb"
