"""Chaos tests: fault injection, retry/backoff, circuit breakers, transactional
CAST recovery, deadlines, stale-cache fallback, and shutdown semantics.

The invariants under test are the robustness layer's contract:

* no fault sequence may ever leave a lost or partially-imported catalog
  object — a failed CAST is invisible afterwards;
* a retried CAST produces a byte-identical copy of the data;
* breaker transitions are observable through ``metrics.snapshot()`` and
  trace spans;
* shutdown and session close are race-safe.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import CancelledError

import numpy as np
import pytest

from repro.common.errors import (
    CastError,
    CircuitOpenError,
    DeadlineExceededError,
    EngineUnavailableError,
    TransientEngineError,
)
from repro.core.bigdawg import BigDawg
from repro.engines.array import ArrayEngine
from repro.engines.keyvalue import KeyValueEngine
from repro.engines.relational import RelationalEngine
from repro.observability.tracing import Tracer, get_tracer, set_tracer
from repro.runtime import (
    CircuitBreaker,
    EngineResilience,
    FaultInjector,
    InjectedFault,
    PolystoreRuntime,
    RetryPolicy,
)


@pytest.fixture()
def bigdawg() -> BigDawg:
    bd = BigDawg()
    postgres = RelationalEngine("postgres")
    scidb = ArrayEngine("scidb")
    accumulo = KeyValueEngine("accumulo")
    bd.add_engine(postgres, islands=["relational", "myria", "d4m"])
    bd.add_engine(scidb, islands=["array"])
    bd.add_engine(accumulo, islands=["text", "d4m"])
    postgres.execute("CREATE TABLE patients (id INTEGER PRIMARY KEY, age INTEGER)")
    postgres.execute("INSERT INTO patients VALUES (1, 64), (2, 70), (3, 41), (4, 77)")
    scidb.load_numpy("waves", np.arange(12, dtype=float).reshape(3, 4))
    scidb.load_numpy("wave_copy", np.arange(6, dtype=float).reshape(2, 3))
    accumulo.create_table("notes", text_indexed=True)
    accumulo.put("notes", "p1", "doctor", "n1", "very sick patient")
    return bd


def assert_no_partials(bigdawg: BigDawg) -> None:
    """The chaos acceptance invariant: no lost or half-imported objects.

    Every registered catalog object must actually exist on its recorded
    engine, and no engine may hold a leftover CAST shadow object.
    """
    for location in bigdawg.catalog.objects():
        engine = bigdawg.catalog.engine(location.engine_name)
        assert engine.has_object(location.name), (
            f"catalog names {location.name!r} on {location.engine_name!r} "
            "but the engine does not have it"
        )
    for engine in bigdawg.catalog.engines():
        shadows = [n for n in engine.list_objects() if "__cast_shadow__" in n]
        assert shadows == [], f"leftover shadow objects on {engine.name!r}: {shadows}"


def rows_of(engine, name):
    return sorted(tuple(row.values) for row in engine.export_relation(name))


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def now(self) -> float:
        return self.t

    def advance(self, seconds: float) -> None:
        self.t += seconds


# ------------------------------------------------------------ fault injection
class TestFaultInjector:
    def test_fail_nth_fires_once_and_uninstall_restores(self, bigdawg):
        postgres = bigdawg.engine("postgres")
        injector = FaultInjector().fail_nth("execute", 2)
        injector.install(postgres)
        postgres.execute("SELECT count(*) FROM patients")
        with pytest.raises(InjectedFault):
            postgres.execute("SELECT count(*) FROM patients")
        postgres.execute("SELECT count(*) FROM patients")  # only the 2nd fails
        assert injector.calls["execute"] == 3
        assert injector.injected["execute"] == 1
        injector.uninstall()
        # The instrumented closure is gone: class lookup resolves again.
        assert "execute" not in postgres.__dict__
        postgres.execute("SELECT count(*) FROM patients")

    def test_instrumentation_preserves_engine_identity(self, bigdawg):
        # isinstance routing in islands/shims and attribute plumbing must
        # keep working while instrumented: faults patch the instance, they
        # never wrap it in a proxy.
        postgres = bigdawg.engine("postgres")
        with FaultInjector() as injector:
            injector.install(postgres)
            assert isinstance(postgres, RelationalEngine)
            assert bigdawg.engine("postgres") is postgres
        assert "execute" not in postgres.__dict__

    def test_fail_every_and_seeded_rate_are_deterministic(self, bigdawg):
        postgres = bigdawg.engine("postgres")
        injector = FaultInjector(seed=5).fail_every("execute", 3)
        injector.install(postgres)
        outcomes = []
        for _ in range(6):
            try:
                postgres.execute("SELECT count(*) FROM patients")
                outcomes.append("ok")
            except InjectedFault:
                outcomes.append("fail")
        injector.uninstall()
        assert outcomes == ["ok", "ok", "fail", "ok", "ok", "fail"]

        a = FaultInjector(seed=7).fail_rate("execute", 0.5)
        b = FaultInjector(seed=7).fail_rate("execute", 0.5)

        def pattern(injector):
            engine = RelationalEngine("pg")
            engine.execute("CREATE TABLE t (id INTEGER)")
            injector.install(engine)
            out = []
            for _ in range(10):
                try:
                    engine.execute("SELECT count(*) FROM t")
                    out.append(1)
                except InjectedFault:
                    out.append(0)
            injector.uninstall()
            return out

        assert pattern(a) == pattern(b)

    def test_added_latency_delays_calls(self, bigdawg):
        postgres = bigdawg.engine("postgres")
        with FaultInjector().add_latency("execute", 0.02) as injector:
            injector.install(postgres)
            begin = time.perf_counter()
            postgres.execute("SELECT count(*) FROM patients")
            assert time.perf_counter() - begin >= 0.02

    def test_outage_downs_every_method_until_restore(self, bigdawg):
        postgres = bigdawg.engine("postgres")
        injector = FaultInjector().outage()
        injector.install(postgres)
        with pytest.raises(EngineUnavailableError):
            postgres.execute("SELECT count(*) FROM patients")
        with pytest.raises(EngineUnavailableError):
            postgres.export_relation("patients")
        assert injector.is_down
        injector.restore()
        postgres.execute("SELECT count(*) FROM patients")
        injector.uninstall()

    def test_export_stream_dies_mid_chunk(self, bigdawg):
        postgres = bigdawg.engine("postgres")
        injector = FaultInjector().fail_mid_stream("export_chunks", after_chunks=1)
        injector.install(postgres)
        chunks = postgres.export_chunks("patients", chunk_size=2)
        first = next(chunks)
        assert len(first) == 2
        with pytest.raises(InjectedFault):
            next(chunks)
        injector.uninstall()

    def test_mid_stream_requires_chunk_method(self):
        with pytest.raises(ValueError):
            FaultInjector().fail_mid_stream("execute", after_chunks=1)


# ------------------------------------------------------------ circuit breaker
class TestCircuitBreaker:
    def test_trips_open_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker("pg", failure_threshold=3, cooldown_s=10.0,
                                 clock=clock.now)
        assert breaker.state == "closed"
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"  # below threshold
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.opened_total == 1
        assert not breaker.allow()
        assert breaker.rejections == 1
        assert breaker.retry_after_s() == pytest.approx(10.0)

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker("pg", failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker("pg", failure_threshold=1, cooldown_s=5.0,
                                 clock=clock.now)
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(5.0)
        assert breaker.state == "half_open"
        assert breaker.allow()       # claims the single probe slot
        assert not breaker.allow()   # no second probe
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.transitions == [
            ("closed", "open"), ("open", "half_open"), ("half_open", "closed"),
        ]

    def test_half_open_probe_failure_reopens_and_restarts_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker("pg", failure_threshold=1, cooldown_s=5.0,
                                 clock=clock.now)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(4.9)
        assert breaker.state == "open"  # cooldown restarted at the probe
        clock.advance(0.2)
        assert breaker.state == "half_open"

    def test_release_probe_frees_the_slot_without_outcome(self):
        clock = FakeClock()
        breaker = CircuitBreaker("pg", failure_threshold=1, cooldown_s=1.0,
                                 half_open_probes=1, clock=clock.now)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.release_probe()
        # Slot is free again, and no transition was recorded.
        assert breaker.state == "half_open"
        assert breaker.allow()


# ------------------------------------------------------------- retry policy
class TestRetryPolicy:
    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(base_backoff_s=0.05, multiplier=2.0,
                             max_backoff_s=0.15, jitter=0.0)
        assert policy.backoff(1) == pytest.approx(0.05)
        assert policy.backoff(2) == pytest.approx(0.10)
        assert policy.backoff(3) == pytest.approx(0.15)  # capped
        assert policy.backoff(8) == pytest.approx(0.15)

    def test_jitter_stays_within_bounds_and_is_seeded(self):
        policy = RetryPolicy(base_backoff_s=0.1, jitter=0.5, seed=11)
        values = [policy.backoff(1) for _ in range(50)]
        assert all(0.05 <= v <= 0.15 for v in values)
        again = [RetryPolicy(base_backoff_s=0.1, jitter=0.5, seed=11).backoff(1)
                 for _ in range(1)]
        assert values[0] == again[0]

    def test_retryability_follows_the_error_flag(self):
        assert RetryPolicy.is_retryable(TransientEngineError("x"))
        assert RetryPolicy.is_retryable(InjectedFault("x"))
        assert RetryPolicy.is_retryable(EngineUnavailableError("x"))
        assert not RetryPolicy.is_retryable(CastError("x"))
        assert not RetryPolicy.is_retryable(ValueError("x"))


# --------------------------------------------------------- resilience driver
class TestEngineResilience:
    def make(self, **kwargs):
        sleeps: list[float] = []
        resilience = EngineResilience(
            retry=kwargs.pop("retry", RetryPolicy(
                max_attempts=3, base_backoff_s=0.01, jitter=0.0)),
            sleep=sleeps.append, **kwargs,
        )
        return resilience, sleeps

    def test_transient_failures_are_retried_to_success(self):
        resilience, sleeps = self.make()
        attempts = {"n": 0}

        def flaky():
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise InjectedFault("transient")
            return 42

        assert resilience.run(["pg"], flaky) == 42
        assert attempts["n"] == 3
        assert len(sleeps) == 2
        assert resilience.breaker("pg").state == "closed"

    def test_semantic_errors_fail_immediately_and_count_as_health(self):
        resilience, sleeps = self.make(failure_threshold=1)
        attempts = {"n": 0}

        def broken():
            attempts["n"] += 1
            raise CastError("semantic")

        with pytest.raises(CastError):
            resilience.run(["pg"], broken)
        assert attempts["n"] == 1
        assert sleeps == []
        # The engine responded, so the breaker saw a *success*.
        assert resilience.breaker("pg").state == "closed"

    def test_exhausted_retries_raise_the_last_error(self):
        resilience, _ = self.make(failure_threshold=100)

        def always():
            raise InjectedFault("still down")

        with pytest.raises(InjectedFault):
            resilience.run(["pg"], always)

    def test_breaker_opens_and_rejects_before_dispatch(self):
        resilience, _ = self.make(
            retry=RetryPolicy(max_attempts=1), failure_threshold=2,
            cooldown_s=60.0,
        )
        calls = {"n": 0}

        def always():
            calls["n"] += 1
            raise InjectedFault("down")

        for _ in range(2):
            with pytest.raises(InjectedFault):
                resilience.run(["pg"], always)
        dispatched = calls["n"]
        with pytest.raises(CircuitOpenError) as excinfo:
            resilience.run(["pg"], always)
        assert calls["n"] == dispatched  # rejected before dispatch
        assert excinfo.value.engine == "pg"
        assert excinfo.value.retry_after_s is not None
        assert resilience.states() == {"pg": "open"}

    def test_half_open_probe_recovers_the_engine(self):
        clock = FakeClock()
        resilience = EngineResilience(
            retry=RetryPolicy(max_attempts=1), failure_threshold=1,
            cooldown_s=5.0, clock=clock.now, sleep=lambda s: None,
        )
        with pytest.raises(InjectedFault):
            resilience.run(["pg"], lambda: (_ for _ in ()).throw(InjectedFault("x")))
        assert resilience.states() == {"pg": "open"}
        clock.advance(5.0)
        assert resilience.run(["pg"], lambda: "ok") == "ok"
        assert resilience.states() == {"pg": "closed"}

    def test_multi_engine_rejection_releases_claimed_probes(self):
        clock = FakeClock()
        resilience = EngineResilience(
            retry=RetryPolicy(max_attempts=1), failure_threshold=1,
            cooldown_s=5.0, clock=clock.now, sleep=lambda s: None,
        )
        # Trip both breakers, then advance only far enough that both are
        # half-open; engine "a" allows a probe, engine "b"... also half-open.
        for name in ("a", "b"):
            with pytest.raises(InjectedFault):
                resilience.run([name], lambda: (_ for _ in ()).throw(InjectedFault("x")))
        # Re-open "b" and claim probes through a two-engine run while "a"
        # is half-open: the rejection must release "a"'s probe slot.
        clock.advance(5.0)
        assert resilience.breaker("a").state == "half_open"
        resilience.breaker("b").allow()          # consume b's only probe slot
        with pytest.raises(CircuitOpenError):
            resilience.run(["a", "b"], lambda: "never")
        # "a"'s probe slot must be free again.
        assert resilience.breaker("a").allow()

    def test_deadline_checked_before_attempts(self):
        clock = FakeClock()
        resilience = EngineResilience(clock=clock.now, sleep=lambda s: None)
        clock.t = 100.0
        with pytest.raises(DeadlineExceededError):
            resilience.run(["pg"], lambda: "never", deadline=100.0)

    def test_deadline_bounds_backoff_and_stops_retries(self):
        clock = FakeClock()
        sleeps: list[float] = []

        def sleep(seconds: float) -> None:
            sleeps.append(seconds)
            clock.advance(seconds)

        resilience = EngineResilience(
            retry=RetryPolicy(max_attempts=10, base_backoff_s=1.0, jitter=0.0),
            failure_threshold=100, clock=clock.now, sleep=sleep,
        )

        def always():
            clock.advance(0.1)
            raise InjectedFault("down")

        # The deadline — not exhaustion — ends the retry loop, at the next
        # attempt boundary after the clipped backoff.
        with pytest.raises(DeadlineExceededError):
            resilience.run(["pg"], always, deadline=1.5)
        # Every backoff was clipped to the remaining budget.
        assert all(s <= 1.5 for s in sleeps)
        assert clock.now() <= 1.5 + 1e-9


# ------------------------------------------------------- transactional CAST
class TestTransactionalCast:
    def test_mid_export_failure_leaves_no_partial_object(self, bigdawg):
        postgres = bigdawg.engine("postgres")
        accumulo = bigdawg.engine("accumulo")
        injector = FaultInjector().fail_mid_stream("export_chunks", after_chunks=1)
        injector.install(postgres)
        with pytest.raises(InjectedFault):
            bigdawg.migrator.cast(
                "patients", "accumulo", target_name="patients_kv", chunk_size=2
            )
        injector.uninstall()
        assert not accumulo.has_object("patients_kv")
        assert bigdawg.catalog.locate("patients").engine_name == "postgres"
        assert_no_partials(bigdawg)

    def test_mid_import_failure_leaves_no_partial_object(self, bigdawg):
        postgres = bigdawg.engine("postgres")
        accumulo = bigdawg.engine("accumulo")
        injector = FaultInjector().fail_mid_stream("import_chunks", after_chunks=1)
        injector.install(accumulo)
        with pytest.raises(InjectedFault):
            bigdawg.migrator.cast(
                "patients", "accumulo", target_name="patients_kv", chunk_size=2
            )
        injector.uninstall()
        assert not accumulo.has_object("patients_kv")
        # The source is untouched by the failed cast.
        assert len(rows_of(postgres, "patients")) == 4
        assert_no_partials(bigdawg)

    def test_retried_cast_is_byte_identical_to_a_clean_cast(self, bigdawg):
        postgres = bigdawg.engine("postgres")
        accumulo = bigdawg.engine("accumulo")
        injector = FaultInjector().fail_nth("import_chunks", 1)
        injector.install(accumulo)
        with pytest.raises(InjectedFault):
            bigdawg.migrator.cast(
                "patients", "accumulo", target_name="patients_kv", chunk_size=2
            )
        # Retry with the fault cleared: same call, same destination.
        injector.uninstall()
        bigdawg.migrator.cast(
            "patients", "accumulo", target_name="patients_kv", chunk_size=2
        )
        retried = rows_of(accumulo, "patients_kv")
        # A never-faulted cast of the same object must produce identical data.
        bigdawg.migrator.cast(
            "patients", "accumulo", target_name="patients_clean", chunk_size=2
        )
        assert retried == rows_of(accumulo, "patients_clean")
        assert_no_partials(bigdawg)

    def test_failed_replacement_keeps_the_old_copy_intact(self, bigdawg):
        postgres = bigdawg.engine("postgres")
        accumulo = bigdawg.engine("accumulo")
        bigdawg.migrator.cast(
            "patients", "accumulo", target_name="patients_kv", chunk_size=2
        )
        before = rows_of(accumulo, "patients_kv")
        postgres.execute("INSERT INTO patients VALUES (5, 30)")
        injector = FaultInjector().fail_mid_stream("export_chunks", after_chunks=1)
        injector.install(postgres)
        with pytest.raises(InjectedFault):
            bigdawg.migrator.cast(
                "patients", "accumulo", target_name="patients_kv", chunk_size=2
            )
        injector.uninstall()
        # The pre-existing destination copy survived the failed replacement.
        assert rows_of(accumulo, "patients_kv") == before
        # And the retry replaces it with the new five-row content.
        bigdawg.migrator.cast(
            "patients", "accumulo", target_name="patients_kv", chunk_size=2
        )
        assert len(rows_of(accumulo, "patients_kv")) > len(before)
        assert_no_partials(bigdawg)

    def test_drop_source_survives_catalog_failure_between_steps(self, bigdawg):
        """Regression for the drop-source ordering hazard: a catalog
        registration failure after the import must never orphan the object
        (source dropped, catalog pointing nowhere)."""
        postgres = bigdawg.engine("postgres")
        scidb = bigdawg.engine("scidb")
        bigdawg.catalog.register_object("wave_copy", "scidb", "array", replace=True)
        original_move = bigdawg.catalog.move_object
        calls = {"n": 0}

        def flaky_move(name, target_engine, object_type=None):
            calls["n"] += 1
            if calls["n"] == 1:
                raise InjectedFault("catalog registration failed")
            return original_move(name, target_engine, object_type)

        bigdawg.catalog.move_object = flaky_move
        try:
            with pytest.raises(InjectedFault):
                bigdawg.migrator.cast("wave_copy", "postgres", drop_source=True)
            # The source copy still exists and the catalog still names it.
            assert scidb.has_object("wave_copy")
            assert bigdawg.catalog.locate("wave_copy").engine_name == "scidb"
            # Idempotent retry completes the move.
            bigdawg.migrator.cast("wave_copy", "postgres", drop_source=True)
        finally:
            del bigdawg.catalog.move_object
        assert not scidb.has_object("wave_copy")
        assert postgres.has_object("wave_copy")
        assert bigdawg.catalog.locate("wave_copy").engine_name == "postgres"
        assert_no_partials(bigdawg)

    def test_randomized_faults_never_corrupt_the_catalog(self, bigdawg):
        """Seeded chaos loop: casts retried under a random fault rate always
        converge with zero lost or partially-imported objects."""
        postgres = bigdawg.engine("postgres")
        scidb = bigdawg.engine("scidb")
        resilience = EngineResilience(
            retry=RetryPolicy(max_attempts=12, base_backoff_s=0.0, jitter=0.0),
            failure_threshold=10_000, sleep=lambda s: None,
        )
        injector = FaultInjector(seed=13).fail_rate(None, 0.15)
        injector.install(scidb)
        try:
            for _ in range(4):
                resilience.run(
                    ["scidb", "postgres"],
                    lambda: bigdawg.migrator.cast(
                        "waves", "postgres", target_name="waves_rel", chunk_size=4
                    ),
                )
        finally:
            injector.uninstall()
        assert injector.total_injected() > 0, "the chaos loop injected nothing"
        assert postgres.has_object("waves_rel")
        # Byte-identical to a clean cast despite every retry.
        bigdawg.migrator.cast(
            "waves", "postgres", target_name="waves_clean", chunk_size=4
        )
        assert rows_of(postgres, "waves_rel") == rows_of(postgres, "waves_clean")
        assert_no_partials(bigdawg)


# ------------------------------------------------------ runtime integration
class TestRuntimeResilience:
    def test_transient_engine_faults_are_retried_transparently(self, bigdawg):
        postgres = bigdawg.engine("postgres")
        runtime = PolystoreRuntime(
            bigdawg, workers=2,
            resilience=EngineResilience(
                retry=RetryPolicy(max_attempts=4, base_backoff_s=0.001, jitter=0.0)
            ),
        )
        injector = FaultInjector().fail_nth("execute", 1)
        injector.install(postgres)
        try:
            result = runtime.execute(
                "RELATIONAL(SELECT count(*) AS n FROM patients)", use_cache=False
            )
            assert result.rows[0]["n"] == 4
            snapshot = runtime.metrics.snapshot()
            assert snapshot["retry_attempts"] >= 1
            assert snapshot["breaker_states"] == {"postgres": "closed"}
        finally:
            injector.uninstall()
            runtime.shutdown()

    def test_breaker_opens_under_outage_and_is_observable(self, bigdawg):
        postgres = bigdawg.engine("postgres")
        runtime = PolystoreRuntime(
            bigdawg, workers=2,
            resilience=EngineResilience(
                retry=RetryPolicy(max_attempts=1), failure_threshold=2,
                cooldown_s=60.0,
            ),
        )
        previous = set_tracer(Tracer(enabled=True))
        injector = FaultInjector().outage()
        injector.install(postgres)
        try:
            for _ in range(2):
                with pytest.raises(EngineUnavailableError):
                    runtime.execute(
                        "RELATIONAL(SELECT count(*) AS n FROM patients)",
                        use_cache=False,
                    )
            with pytest.raises(CircuitOpenError):
                runtime.execute(
                    "RELATIONAL(SELECT count(*) AS n FROM patients)",
                    use_cache=False,
                )
            snapshot = runtime.metrics.snapshot()
            assert snapshot["breaker_states"] == {"postgres": "open"}
            assert snapshot["breaker_open_total"] == 1
            assert snapshot["breaker_rejections"] >= 1
            tracer = get_tracer()
            (transition,) = tracer.spans("breaker_transition")
            assert transition.attrs["engine"] == "postgres"
            assert transition.attrs["to_state"] == "open"
            assert tracer.spans("retry") == []  # max_attempts=1: no retries
        finally:
            set_tracer(previous)
            injector.uninstall()
            runtime.shutdown()

    def test_recovery_after_cooldown_closes_the_breaker(self, bigdawg):
        postgres = bigdawg.engine("postgres")
        runtime = PolystoreRuntime(
            bigdawg, workers=2,
            resilience=EngineResilience(
                retry=RetryPolicy(max_attempts=1), failure_threshold=1,
                cooldown_s=0.05,
            ),
        )
        injector = FaultInjector().outage()
        injector.install(postgres)
        try:
            with pytest.raises(EngineUnavailableError):
                runtime.execute(
                    "RELATIONAL(SELECT count(*) AS n FROM patients)",
                    use_cache=False,
                )
            assert runtime.resilience.states() == {"postgres": "open"}
            injector.restore()
            time.sleep(0.06)  # past the cooldown: next call is the probe
            result = runtime.execute(
                "RELATIONAL(SELECT count(*) AS n FROM patients)", use_cache=False
            )
            assert result.rows[0]["n"] == 4
            assert runtime.resilience.states() == {"postgres": "closed"}
            assert runtime.metrics.snapshot()["breaker_close_total"] == 1
        finally:
            injector.uninstall()
            runtime.shutdown()

    def test_stale_cache_fallback_serves_flagged_results(self, bigdawg):
        postgres = bigdawg.engine("postgres")
        runtime = PolystoreRuntime(
            bigdawg, workers=2, serve_stale_on_open=True,
            resilience=EngineResilience(
                retry=RetryPolicy(max_attempts=1), failure_threshold=1,
                cooldown_s=60.0,
            ),
        )
        query = "RELATIONAL(SELECT count(*) AS n FROM patients)"
        injector = FaultInjector()
        try:
            fresh = runtime.execute(query)
            assert fresh.rows[0]["n"] == 4
            assert fresh.stale is False
            # Invalidate the cached entry, then down the engine.
            postgres.execute("INSERT INTO patients VALUES (5, 30)")
            injector.outage()
            injector.install(postgres)
            with pytest.raises(EngineUnavailableError):
                runtime.execute(query)  # trips the breaker open
            served = runtime.execute(query)
            assert served.stale is True
            assert served.rows[0]["n"] == 4  # last-known-good, not current
            assert runtime.metrics.snapshot()["stale_served"] == 1
        finally:
            injector.uninstall()
            runtime.shutdown()

    def test_without_opt_in_breaker_rejection_propagates(self, bigdawg):
        postgres = bigdawg.engine("postgres")
        runtime = PolystoreRuntime(
            bigdawg, workers=2,
            resilience=EngineResilience(
                retry=RetryPolicy(max_attempts=1), failure_threshold=1,
                cooldown_s=60.0,
            ),
        )
        query = "RELATIONAL(SELECT count(*) AS n FROM patients)"
        injector = FaultInjector()
        try:
            runtime.execute(query)
            postgres.execute("INSERT INTO patients VALUES (5, 30)")
            injector.outage()
            injector.install(postgres)
            with pytest.raises(EngineUnavailableError):
                runtime.execute(query)
            with pytest.raises(CircuitOpenError):
                runtime.execute(query)
        finally:
            injector.uninstall()
            runtime.shutdown()

    def test_deadline_fails_at_a_step_boundary(self, bigdawg):
        runtime = PolystoreRuntime(bigdawg, workers=2)
        try:
            with pytest.raises(DeadlineExceededError):
                runtime.execute(
                    "RELATIONAL(SELECT count(*) AS n FROM patients)",
                    use_cache=False, deadline_s=0.0,
                )
        finally:
            runtime.shutdown()

    def test_default_deadline_applies_to_every_query(self, bigdawg):
        runtime = PolystoreRuntime(bigdawg, workers=2, default_deadline_s=0.0)
        try:
            with pytest.raises(DeadlineExceededError):
                runtime.execute(
                    "RELATIONAL(SELECT count(*) AS n FROM patients)",
                    use_cache=False,
                )
            # An explicit generous deadline overrides the default.
            result = runtime.execute(
                "RELATIONAL(SELECT count(*) AS n FROM patients)",
                use_cache=False, deadline_s=30.0,
            )
            assert result.rows[0]["n"] == 4
        finally:
            runtime.shutdown()


# ------------------------------------------------------- shutdown semantics
class TestShutdownSemantics:
    def test_shutdown_waits_for_in_flight_queries(self, bigdawg):
        runtime = PolystoreRuntime(bigdawg, workers=2, engine_latency=0.02)
        futures = [
            runtime.submit(
                "RELATIONAL(SELECT count(*) AS n FROM patients)", use_cache=False
            )
            for _ in range(4)
        ]
        runtime.shutdown(wait=True)
        assert all(f.done() for f in futures)
        assert all(f.result().rows[0]["n"] == 4 for f in futures)

    def test_shutdown_nowait_cancels_queued_queries(self, bigdawg):
        runtime = PolystoreRuntime(bigdawg, workers=1, engine_latency=0.2)
        futures = [
            runtime.submit(
                "RELATIONAL(SELECT count(*) AS n FROM patients)", use_cache=False
            )
            for _ in range(3)
        ]
        time.sleep(0.05)  # let the single worker start the first query
        begin = time.perf_counter()
        runtime.shutdown(wait=False)
        assert time.perf_counter() - begin < 0.15  # returned without joining
        # The in-flight query completes; the queued ones were cancelled.
        assert futures[0].result(timeout=5).rows[0]["n"] == 4
        for future in futures[1:]:
            with pytest.raises(CancelledError):
                future.result(timeout=5)

    def test_shutdown_is_idempotent_and_blocks_submit(self, bigdawg):
        runtime = PolystoreRuntime(bigdawg, workers=1)
        runtime.shutdown()
        runtime.shutdown(wait=False)  # second call is a no-op
        with pytest.raises(RuntimeError, match="shut down"):
            runtime.submit("RELATIONAL(SELECT 1)")

    def test_submit_racing_shutdown_reports_shut_down(self, bigdawg):
        runtime = PolystoreRuntime(bigdawg, workers=1)
        runtime.shutdown()
        # Model the race where submit passed the _closed check before
        # shutdown flipped it: the pool's own refusal is translated.
        runtime._closed = False
        with pytest.raises(RuntimeError, match="shut down"):
            runtime.submit("RELATIONAL(SELECT 1)")

    def test_session_close_is_race_safe_with_in_flight_queries(self, bigdawg):
        runtime = PolystoreRuntime(bigdawg, workers=2, engine_latency=0.02)
        try:
            session = runtime.session()
            future = session.submit(
                "RELATIONAL(SELECT count(*) AS n FROM patients)", use_cache=False
            )
            session.close()  # closing with the query still in flight
            assert future.result(timeout=5).rows[0]["n"] == 4
            with pytest.raises(RuntimeError, match="closed"):
                session.submit("RELATIONAL(SELECT 1)")
            session.close()  # idempotent
        finally:
            runtime.shutdown()

    def test_concurrent_session_close_and_submit_never_leak(self, bigdawg):
        runtime = PolystoreRuntime(bigdawg, workers=2)
        try:
            session = runtime.session()
            errors: list[BaseException] = []
            submitted: list[object] = []

            def hammer():
                for _ in range(20):
                    try:
                        submitted.append(session.submit(
                            "RELATIONAL(SELECT count(*) AS n FROM patients)"
                        ))
                    except RuntimeError:
                        return  # session closed underneath us: the contract
                    except BaseException as exc:  # noqa: BLE001
                        errors.append(exc)

            thread = threading.Thread(target=hammer)
            thread.start()
            session.close()
            thread.join()
            assert errors == []
            for future in submitted:
                future.result(timeout=5)
        finally:
            runtime.shutdown()


# ------------------------------------------------- scoped + sampled tracing
class TestScopedAndSampledTracing:
    def test_runtime_trace_returns_spans_without_global_tracing(self, bigdawg):
        runtime = PolystoreRuntime(bigdawg, workers=2)
        try:
            assert not get_tracer().enabled
            relation, tracer = runtime.trace(
                "RELATIONAL(SELECT count(*) AS n FROM patients)"
            )
            assert relation.rows[0]["n"] == 4
            names = tracer.span_names()
            assert "query" in names
            assert "executed" in names
            assert "plan_step" in names
            # The process-global tracer saw none of it.
            assert not get_tracer().enabled
            assert len(get_tracer()) == 0
        finally:
            runtime.shutdown()

    def test_trace_carries_into_parallel_plan_steps(self, bigdawg):
        runtime = PolystoreRuntime(bigdawg, workers=2)
        try:
            _, tracer = runtime.trace(
                "RELATIONAL(SELECT count(*) AS n FROM CAST(wave_copy, relational)"
                " WHERE value >= 0)"
            )
            assert "cast" in tracer.span_names()
        finally:
            runtime.shutdown()

    def test_sampled_tracing_records_one_in_n(self, bigdawg):
        runtime = PolystoreRuntime(bigdawg, workers=1)
        previous = set_tracer(Tracer(enabled=True, sample_every=3))
        try:
            for _ in range(6):
                runtime.execute(
                    "RELATIONAL(SELECT count(*) AS n FROM patients)",
                    use_cache=False,
                )
            tracer = get_tracer()
            assert len(tracer.spans("query")) == 2  # queries 0 and 3
            assert tracer.sampled == 2
            assert tracer.unsampled == 4
        finally:
            set_tracer(previous)
            runtime.shutdown()

    def test_trace_is_rejected_after_shutdown(self, bigdawg):
        runtime = PolystoreRuntime(bigdawg, workers=1)
        runtime.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            runtime.trace("RELATIONAL(SELECT 1)")
