"""Tests for the shared expression AST and its SQL NULL semantics."""

from __future__ import annotations

import pytest

from repro.common.errors import ExecutionError
from repro.common.expressions import (
    BinaryOp,
    CaseWhen,
    ColumnRef,
    FunctionCall,
    InList,
    IsNull,
    Literal,
    UnaryOp,
    columns_satisfiable_by,
    conjunction,
    evaluate_predicate,
    split_conjuncts,
)
from repro.common.schema import Row, Schema


SCHEMA = Schema([("age", "integer"), ("race", "text"), ("stay", "float")])


def row(age, race, stay):
    return Row(SCHEMA, (age, race, stay))


class TestBasicEvaluation:
    def test_literal_and_column(self):
        r = row(64, "white", 3.5)
        assert Literal(5).evaluate(r) == 5
        assert ColumnRef("race").evaluate(r) == "white"

    def test_arithmetic(self):
        r = row(64, "white", 3.5)
        expr = BinaryOp("+", ColumnRef("age"), Literal(1))
        assert expr.evaluate(r) == 65
        assert BinaryOp("*", ColumnRef("stay"), Literal(2)).evaluate(r) == 7.0
        assert BinaryOp("%", ColumnRef("age"), Literal(10)).evaluate(r) == 4

    def test_division_by_zero_raises(self):
        with pytest.raises(ExecutionError):
            BinaryOp("/", Literal(1), Literal(0)).evaluate(row(1, "x", 1.0))

    def test_comparisons(self):
        r = row(64, "white", 3.5)
        assert BinaryOp(">", ColumnRef("age"), Literal(60)).evaluate(r) is True
        assert BinaryOp("=", ColumnRef("race"), Literal("white")).evaluate(r) is True
        assert BinaryOp("!=", ColumnRef("race"), Literal("white")).evaluate(r) is False

    def test_like(self):
        r = row(64, "hispanic", 3.5)
        assert BinaryOp("like", ColumnRef("race"), Literal("his%")).evaluate(r) is True
        assert BinaryOp("like", ColumnRef("race"), Literal("h_spanic")).evaluate(r) is True
        assert BinaryOp("like", ColumnRef("race"), Literal("white%")).evaluate(r) is False

    def test_unknown_operator_rejected(self):
        with pytest.raises(ExecutionError):
            BinaryOp("<=>", Literal(1), Literal(2))


class TestNullSemantics:
    def test_null_propagates_through_arithmetic_and_comparison(self):
        r = row(None, "white", 3.5)
        assert BinaryOp("+", ColumnRef("age"), Literal(1)).evaluate(r) is None
        assert BinaryOp(">", ColumnRef("age"), Literal(10)).evaluate(r) is None

    def test_three_valued_and_or(self):
        r = row(None, "white", 3.5)
        null_cmp = BinaryOp(">", ColumnRef("age"), Literal(10))
        true_cmp = BinaryOp("=", ColumnRef("race"), Literal("white"))
        false_cmp = BinaryOp("=", ColumnRef("race"), Literal("black"))
        assert BinaryOp("and", null_cmp, false_cmp).evaluate(r) is False
        assert BinaryOp("and", null_cmp, true_cmp).evaluate(r) is None
        assert BinaryOp("or", null_cmp, true_cmp).evaluate(r) is True
        assert BinaryOp("or", null_cmp, false_cmp).evaluate(r) is None

    def test_is_null(self):
        r = row(None, "white", 3.5)
        assert IsNull(ColumnRef("age")).evaluate(r) is True
        assert IsNull(ColumnRef("age"), negated=True).evaluate(r) is False
        assert IsNull(ColumnRef("race")).evaluate(r) is False

    def test_evaluate_predicate_treats_null_as_false(self):
        r = row(None, "white", 3.5)
        assert evaluate_predicate(BinaryOp(">", ColumnRef("age"), Literal(10)), r) is False
        assert evaluate_predicate(None, r) is True


class TestOtherNodes:
    def test_unary(self):
        r = row(64, "white", 3.5)
        assert UnaryOp("not", BinaryOp(">", ColumnRef("age"), Literal(60))).evaluate(r) is False
        assert UnaryOp("-", ColumnRef("stay")).evaluate(r) == -3.5
        assert UnaryOp("not", IsNull(ColumnRef("age"))).evaluate(r) is True

    def test_in_list(self):
        r = row(64, "white", 3.5)
        assert InList(ColumnRef("race"), ("white", "black")).evaluate(r) is True
        assert InList(ColumnRef("race"), ("asian",), negated=True).evaluate(r) is True
        assert InList(ColumnRef("age"), (1, 2)).evaluate(row(None, "x", 1.0)) is None

    def test_case_when(self):
        expr = CaseWhen(
            branches=(
                (BinaryOp(">=", ColumnRef("age"), Literal(65)), Literal("senior")),
                (BinaryOp(">=", ColumnRef("age"), Literal(18)), Literal("adult")),
            ),
            default=Literal("minor"),
        )
        assert expr.evaluate(row(70, "x", 1.0)) == "senior"
        assert expr.evaluate(row(30, "x", 1.0)) == "adult"
        assert expr.evaluate(row(10, "x", 1.0)) == "minor"

    def test_functions(self):
        r = row(64, "white", 2.25)
        assert FunctionCall("sqrt", (ColumnRef("stay"),)).evaluate(r) == 1.5
        assert FunctionCall("upper", (ColumnRef("race"),)).evaluate(r) == "WHITE"
        assert FunctionCall("coalesce", (ColumnRef("age"), Literal(0))).evaluate(r) == 64
        assert FunctionCall("coalesce", (ColumnRef("age"), Literal(0))).evaluate(row(None, "x", 1.0)) == 0
        with pytest.raises(ExecutionError):
            FunctionCall("no_such_fn", ()).evaluate(r)


class TestPredicateHelpers:
    def test_conjunction_and_split_are_inverse(self):
        parts = [
            BinaryOp(">", ColumnRef("age"), Literal(10)),
            BinaryOp("<", ColumnRef("stay"), Literal(5)),
            IsNull(ColumnRef("race"), negated=True),
        ]
        joined = conjunction(parts)
        assert split_conjuncts(joined) == parts
        assert conjunction([]) is None
        assert split_conjuncts(None) == []

    def test_referenced_columns(self):
        expr = BinaryOp("and",
                        BinaryOp(">", ColumnRef("age"), Literal(10)),
                        BinaryOp("=", ColumnRef("race"), Literal("white")))
        assert expr.referenced_columns() == {"age", "race"}

    def test_columns_satisfiable_by(self):
        expr = BinaryOp(">", ColumnRef("age"), Literal(10))
        assert columns_satisfiable_by(expr, SCHEMA) is True
        assert columns_satisfiable_by(BinaryOp(">", ColumnRef("zzz"), Literal(1)), SCHEMA) is False

    def test_to_sql_rendering(self):
        expr = BinaryOp("and",
                        BinaryOp(">=", ColumnRef("age"), Literal(65)),
                        BinaryOp("=", ColumnRef("race"), Literal("o'brien")))
        text = expr.to_sql()
        assert "age" in text and ">=" in text and "''" in text
