"""Tests for repro.common.schema: columns, schemas, rows and relations."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import SchemaError, TypeMismatchError
from repro.common.schema import Column, Relation, Row, Schema, TableDefinition
from repro.common.types import DataType


@pytest.fixture()
def patient_schema() -> Schema:
    return Schema(
        [
            Column("patient_id", DataType.INTEGER, nullable=False),
            Column("age", DataType.INTEGER),
            Column("race", DataType.TEXT),
            Column("stay_days", DataType.FLOAT),
        ]
    )


class TestColumn:
    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("", DataType.TEXT)

    def test_type_aliases_resolved(self):
        assert Column("x", "bigint").dtype is DataType.INTEGER

    def test_matches_is_case_insensitive_and_suffix_aware(self):
        column = Column("patients.age", DataType.INTEGER)
        assert column.matches("AGE")
        assert column.matches("patients.age")
        assert not column.matches("stay")

    def test_with_name_preserves_type(self):
        renamed = Column("a", DataType.FLOAT, nullable=False).with_name("b")
        assert renamed.name == "b"
        assert renamed.dtype is DataType.FLOAT
        assert renamed.nullable is False


class TestSchema:
    def test_tuple_shorthand(self):
        schema = Schema([("a", "integer"), ("b", "text", False)])
        assert schema.column("b").nullable is False

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([("a", "integer"), ("A", "text")])

    def test_index_of_and_ambiguity(self, patient_schema):
        assert patient_schema.index_of("age") == 1
        assert patient_schema.index_of("AGE") == 1
        with pytest.raises(SchemaError):
            patient_schema.index_of("missing")

    def test_qualified_lookup_through_suffix(self):
        schema = Schema([Column("p.age", DataType.INTEGER), Column("p.race", DataType.TEXT)])
        assert schema.index_of("age") == 0
        assert schema.index_of("p.race") == 1

    def test_ambiguous_suffix_raises(self):
        schema = Schema([Column("p.id", DataType.INTEGER), Column("r.id", DataType.INTEGER)])
        with pytest.raises(SchemaError):
            schema.index_of("id")

    def test_project_and_rename(self, patient_schema):
        projected = patient_schema.project(["race", "age"])
        assert projected.names == ["race", "age"]
        renamed = patient_schema.rename({"race": "ethnicity"})
        assert "ethnicity" in renamed.names

    def test_concat_and_prefixed(self, patient_schema):
        other = Schema([("drug", "text")])
        combined = patient_schema.concat(other)
        assert len(combined) == 5
        prefixed = patient_schema.prefixed("p")
        assert prefixed.names[0] == "p.patient_id"

    def test_merge_types_promotes(self):
        a = Schema([("x", "integer"), ("y", "integer")])
        b = Schema([("x", "float"), ("y", "integer")])
        merged = a.merge_types(b)
        assert merged.column("x").dtype is DataType.FLOAT
        assert merged.column("y").dtype is DataType.INTEGER

    def test_merge_types_width_mismatch(self):
        with pytest.raises(SchemaError):
            Schema([("x", "integer")]).merge_types(Schema([("x", "integer"), ("y", "text")]))

    def test_validate_row_coerces_and_checks_nulls(self, patient_schema):
        values = patient_schema.validate_row(["7", "64", "white", "3.5"])
        assert values == (7, 64, "white", 3.5)
        with pytest.raises(TypeMismatchError):
            patient_schema.validate_row([None, 60, "white", 1.0])
        with pytest.raises(SchemaError):
            patient_schema.validate_row([1, 2])


class TestRow:
    def test_access_by_index_and_name(self, patient_schema):
        row = Row(patient_schema, (1, 64, "white", 3.5))
        assert row[0] == 1
        assert row["race"] == "white"
        assert row.get("missing", "default") == "default"

    def test_to_dict_and_equality(self, patient_schema):
        row = Row(patient_schema, (1, 64, "white", 3.5))
        assert row.to_dict()["age"] == 64
        assert row == (1, 64, "white", 3.5)
        assert hash(row) == hash(Row(patient_schema, (1, 64, "white", 3.5)))

    def test_concat_and_project(self, patient_schema):
        row = Row(patient_schema, (1, 64, "white", 3.5))
        extra = Row(Schema([("drug", "text")]), ("aspirin",))
        combined = row.concat(extra)
        assert combined["drug"] == "aspirin"
        projected = row.project(["race", "age"])
        assert projected.values == ("white", 64)


class TestRelation:
    def test_append_validates(self, patient_schema):
        relation = Relation(patient_schema)
        relation.append([1, "64", "white", 2])
        assert relation.rows[0]["age"] == 64
        with pytest.raises(SchemaError):
            relation.append([1, 2])

    def test_column_extraction_and_sort(self, patient_schema):
        relation = Relation(patient_schema, [
            [2, 70, "black", 7.2],
            [1, 64, "white", 3.5],
            [3, None, "asian", 2.0],
        ])
        assert relation.column("patient_id") == [2, 1, 3]
        ordered = relation.sorted_by("age")
        # NULLs sort last.
        assert ordered.rows[-1]["patient_id"] == 3
        descending = relation.sorted_by("stay_days", descending=True)
        assert descending.rows[0]["patient_id"] == 2  # longest stay first

    def test_from_dicts_and_head(self, patient_schema):
        relation = Relation.from_dicts(
            patient_schema,
            [{"patient_id": 1, "age": 50, "race": "white", "stay_days": 1.0},
             {"patient_id": 2, "age": 60, "race": "black", "stay_days": 2.0}],
        )
        assert len(relation) == 2
        assert len(relation.head(1)) == 1

    def test_equality(self, patient_schema):
        a = Relation(patient_schema, [[1, 60, "white", 1.0]])
        b = Relation(patient_schema, [[1, 60, "white", 1.0]])
        assert a == b


class TestTableDefinition:
    def test_primary_key_must_exist(self, patient_schema):
        TableDefinition("patients", patient_schema, ("patient_id",))
        with pytest.raises(SchemaError):
            TableDefinition("patients", patient_schema, ("missing",))


@given(
    st.lists(
        st.tuples(st.integers(-1000, 1000), st.floats(allow_nan=False, allow_infinity=False)),
        min_size=0, max_size=30,
    )
)
def test_relation_roundtrip_through_dicts(rows):
    """Property: Relation -> dicts -> Relation preserves content."""
    schema = Schema([("a", "integer"), ("b", "float")])
    relation = Relation(schema, [list(row) for row in rows])
    rebuilt = Relation.from_dicts(schema, relation.to_dicts())
    assert rebuilt == relation
