"""Tests for the CSV and binary codecs used by the CAST operator."""

from __future__ import annotations

import os
import time as time_module
from datetime import datetime, timezone

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import CastError
from repro.common.schema import Relation, Schema
from repro.common.serialization import BinaryCodec, CsvCodec


SCHEMA = Schema(
    [("id", "integer"), ("name", "text"), ("score", "float"), ("active", "boolean"), ("seen", "timestamp")]
)


def sample_relation() -> Relation:
    relation = Relation(SCHEMA)
    relation.append([1, "alice", 3.5, True, datetime(2015, 8, 31, 12, 0, tzinfo=timezone.utc)])
    relation.append([2, "bob, the builder", None, False, None])
    relation.append([3, 'quote "x"\nnewline', -1.25, None, datetime(2020, 1, 1, tzinfo=timezone.utc)])
    return relation


@pytest.mark.parametrize("codec", [CsvCodec(), BinaryCodec()], ids=["csv", "binary"])
class TestRoundTrip:
    def test_roundtrip_preserves_values(self, codec):
        original = sample_relation()
        decoded = codec.decode(codec.encode(original), SCHEMA)
        assert len(decoded) == len(original)
        assert decoded.rows[0]["id"] == 1
        assert decoded.rows[0]["name"] == "alice"
        assert decoded.rows[1]["score"] is None
        assert decoded.rows[1]["active"] is False
        assert decoded.rows[0]["active"] is True
        assert decoded.rows[2]["score"] == -1.25

    def test_empty_relation(self, codec):
        empty = Relation(SCHEMA)
        decoded = codec.decode(codec.encode(empty), SCHEMA)
        assert len(decoded) == 0

    def test_timestamps_survive(self, codec):
        original = sample_relation()
        decoded = codec.decode(codec.encode(original), SCHEMA)
        assert decoded.rows[0]["seen"].year == 2015
        assert decoded.rows[1]["seen"] is None


class TestCsvSpecifics:
    def test_quoting_of_delimiters_and_quotes(self):
        codec = CsvCodec()
        decoded = codec.decode(codec.encode(sample_relation()), SCHEMA)
        assert decoded.rows[1]["name"] == "bob, the builder"
        assert '"x"' in decoded.rows[2]["name"]

    def test_header_row_present(self):
        payload = CsvCodec().encode(sample_relation()).decode("utf-8")
        assert payload.splitlines()[0].startswith("id,")

    def test_width_mismatch_raises(self):
        payload = b"id,name\n1,alice,extra\n"
        with pytest.raises(CastError):
            CsvCodec().decode(payload, Schema([("id", "integer"), ("name", "text")]))

    def test_unparseable_value_raises(self):
        payload = b"id\nnot_a_number\n"
        with pytest.raises(CastError):
            CsvCodec().decode(payload, Schema([("id", "integer")]))


class TestCsvRegressions:
    def test_single_empty_text_column_row_is_not_dropped(self):
        # Regression: decode used to skip any [""] record, silently losing
        # rows whose single TEXT column holds the empty string.
        schema = Schema([("note", "text")])
        relation = Relation(schema, [["first"], [""], ["last"]])
        decoded = CsvCodec().decode(CsvCodec().encode(relation), schema)
        assert [row["note"] for row in decoded] == ["first", "", "last"]

    def test_blank_line_still_tolerated_for_wider_schemas(self):
        schema = Schema([("id", "integer"), ("name", "text")])
        payload = b"id,name\n1,alice\n\n2,bob\n"
        decoded = CsvCodec().decode(payload, schema)
        assert [row["id"] for row in decoded] == [1, 2]

    def test_blank_line_tolerated_for_single_non_text_column(self):
        # A blank line can only be a value for a single-TEXT-column schema;
        # for a single INTEGER column it is still skipped as a blank line.
        schema = Schema([("id", "integer")])
        decoded = CsvCodec().decode(b"id\n1\n\n2\n", schema)
        assert [row["id"] for row in decoded] == [1, 2]

    def test_unrecognized_boolean_token_raises(self):
        # Regression: unknown tokens used to be coerced to False instead of
        # raising ("yes"/"no" are recognized, matching repro.common.types.coerce).
        schema = Schema([("flag", "boolean")])
        with pytest.raises(CastError):
            CsvCodec().decode(b"flag\nmaybe\n", schema)

    def test_recognized_boolean_tokens(self):
        schema = Schema([("flag", "boolean")])
        decoded = CsvCodec().decode(b"flag\nTrue\nf\n1\n0\nyes\nno\n", schema)
        assert [row["flag"] for row in decoded] == [True, False, True, False, True, False]


class TestTimestampNormalization:
    @pytest.mark.parametrize("codec", [CsvCodec(), BinaryCodec()], ids=["csv", "binary"])
    def test_naive_timestamp_roundtrip_is_timezone_independent(self, codec):
        # Regression: BinaryCodec used to call .timestamp() on naive datetimes
        # (interpreted in *local* time) while decode always attached UTC, so a
        # naive value decoded to a different wall-clock instant whenever the
        # host timezone was not UTC.
        schema = Schema([("seen", "timestamp")])
        relation = Relation(schema, [[datetime(2020, 6, 1, 12, 30)]])
        saved = os.environ.get("TZ")
        os.environ["TZ"] = "America/New_York"
        time_module.tzset()
        try:
            decoded = codec.decode(codec.encode(relation), schema)
        finally:
            if saved is None:
                os.environ.pop("TZ", None)
            else:
                os.environ["TZ"] = saved
            time_module.tzset()
        assert decoded.rows[0]["seen"] == datetime(2020, 6, 1, 12, 30, tzinfo=timezone.utc)

    def test_aware_timestamp_unchanged(self):
        schema = Schema([("seen", "timestamp")])
        instant = datetime(2015, 8, 31, 9, 0, tzinfo=timezone.utc)
        for codec in (CsvCodec(), BinaryCodec()):
            decoded = codec.decode(codec.encode(Relation(schema, [[instant]])), schema)
            assert decoded.rows[0]["seen"] == instant


class TestChunkedFrames:
    @pytest.mark.parametrize("codec", [CsvCodec(), BinaryCodec()], ids=["csv", "binary"])
    def test_chunked_roundtrip_matches_single_shot(self, codec):
        relation = sample_relation()
        chunks = []
        for start in range(0, len(relation), 2):
            chunk = Relation(SCHEMA)
            chunk.rows.extend(relation.rows[start : start + 2])
            chunks.append(chunk)
        frames = list(codec.encode_chunks(chunks))
        assert len(frames) == 2
        decoded_chunks = list(codec.decode_chunks(frames, SCHEMA))
        reassembled = [tuple(r.values) for c in decoded_chunks for r in c]
        single_shot = codec.decode(codec.encode(relation), SCHEMA)
        assert reassembled == [tuple(r.values) for r in single_shot]

    @pytest.mark.parametrize("codec", [CsvCodec(), BinaryCodec()], ids=["csv", "binary"])
    def test_each_frame_decodes_independently(self, codec):
        relation = sample_relation()
        chunk = Relation(SCHEMA)
        chunk.rows.extend(relation.rows[1:2])
        (frame,) = codec.encode_chunks([chunk])
        decoded = codec.decode(frame, SCHEMA)
        assert len(decoded) == 1 and decoded.rows[0]["name"] == "bob, the builder"

    def test_empty_chunk_stream(self):
        assert list(BinaryCodec().encode_chunks([])) == []
        assert list(BinaryCodec().decode_chunks([], SCHEMA)) == []


class TestColumnarLayout:
    def test_all_numeric_schema_uses_columnar_layout(self):
        schema = Schema([("i", "integer"), ("v", "float"), ("ok", "boolean"), ("at", "timestamp")])
        relation = Relation(schema, [
            [1, 1.5, True, datetime(2020, 1, 1, tzinfo=timezone.utc)],
            [None, None, None, None],
            [3, -2.5, False, datetime(2021, 6, 1, 12, 0, tzinfo=timezone.utc)],
        ])
        payload = BinaryCodec().encode(relation)
        assert payload[0] == BinaryCodec.LAYOUT_COLUMNAR
        decoded = BinaryCodec().decode(payload, schema)
        assert [tuple(r.values) for r in decoded] == [tuple(r.values) for r in relation]

    def test_text_column_falls_back_to_row_major(self):
        payload = BinaryCodec().encode(sample_relation())
        assert payload[0] == BinaryCodec.LAYOUT_ROW_MAJOR

    def test_forced_row_major_roundtrips(self):
        schema = Schema([("i", "integer"), ("v", "float")])
        relation = Relation(schema, [[i, i * 0.5] for i in range(10)])
        codec = BinaryCodec(columnar=False)
        payload = codec.encode(relation)
        assert payload[0] == BinaryCodec.LAYOUT_ROW_MAJOR
        decoded = codec.decode(payload, schema)
        assert [tuple(r.values) for r in decoded] == [tuple(r.values) for r in relation]

    def test_columnar_and_row_major_decode_identically(self):
        schema = Schema([("i", "integer"), ("v", "float")])
        relation = Relation(schema, [[i, i * 0.5] for i in range(100)] + [[None, None]])
        columnar = BinaryCodec().decode(BinaryCodec().encode(relation), schema)
        row_major = BinaryCodec(columnar=False).decode(
            BinaryCodec(columnar=False).encode(relation), schema
        )
        assert [tuple(r.values) for r in columnar] == [tuple(r.values) for r in row_major]

    def test_columnar_frame_decoded_into_wider_schema_coerces(self):
        # When frame tags differ from the target schema, decode still coerces
        # (the unvalidated fast path only applies on an exact type match).
        int_schema = Schema([("v", "integer")])
        float_schema = Schema([("v", "float")])
        payload = BinaryCodec().encode(Relation(int_schema, [[1], [2]]))
        decoded = BinaryCodec().decode(payload, float_schema)
        assert [row["v"] for row in decoded] == [1.0, 2.0]
        assert all(isinstance(row["v"], float) for row in decoded)

    def test_columnar_empty_relation(self):
        schema = Schema([("i", "integer")])
        payload = BinaryCodec().encode(Relation(schema))
        assert payload[0] == BinaryCodec.LAYOUT_COLUMNAR
        assert len(BinaryCodec().decode(payload, schema)) == 0


class TestBinarySpecifics:
    def test_binary_size_is_comparable_to_csv_for_numeric_data(self):
        schema = Schema([("i", "integer"), ("v", "float")])
        relation = Relation(schema, [[i, i * 1.5] for i in range(1000)])
        binary = BinaryCodec().encode(relation)
        csv = CsvCodec().encode(relation)
        # The binary frame is fixed-width per value; it must stay within a small
        # constant factor of the text size while avoiding any text parsing.
        assert len(binary) < len(csv) * 2.0

    def test_column_count_mismatch_raises(self):
        relation = Relation(Schema([("a", "integer")]), [[1]])
        payload = BinaryCodec().encode(relation)
        with pytest.raises(CastError):
            BinaryCodec().decode(payload, Schema([("a", "integer"), ("b", "integer")]))


_value_strategy = st.one_of(
    st.none(),
    st.integers(min_value=-(2 ** 31), max_value=2 ** 31),
    st.text(max_size=20),
)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(-10**6, 10**6), st.text(max_size=12),
                           st.floats(allow_nan=False, allow_infinity=False, width=32)),
                max_size=20))
def test_property_binary_roundtrip(rows):
    """Property: arbitrary (int, text, float) relations survive the binary codec."""
    schema = Schema([("a", "integer"), ("b", "text"), ("c", "float")])
    relation = Relation(schema, [list(r) for r in rows])
    decoded = BinaryCodec().decode(BinaryCodec().encode(relation), schema)
    assert [tuple(r.values) for r in decoded] == [tuple(r.values) for r in relation]


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(-10**6, 10**6),
                           st.text(alphabet=st.characters(blacklist_categories=("Cs", "Cc"),
                                                          blacklist_characters="\\"),
                                   max_size=12)),
                max_size=20))
def test_property_csv_roundtrip(rows):
    """Property: arbitrary (int, text) relations survive the CSV codec."""
    schema = Schema([("a", "integer"), ("b", "text")])
    relation = Relation(schema, [list(r) for r in rows])
    decoded = CsvCodec().decode(CsvCodec().encode(relation), schema)
    assert [tuple(r.values) for r in decoded] == [tuple(r.values) for r in relation]
