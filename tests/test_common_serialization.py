"""Tests for the CSV and binary codecs used by the CAST operator."""

from __future__ import annotations

from datetime import datetime, timezone

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import CastError
from repro.common.schema import Relation, Schema
from repro.common.serialization import BinaryCodec, CsvCodec


SCHEMA = Schema(
    [("id", "integer"), ("name", "text"), ("score", "float"), ("active", "boolean"), ("seen", "timestamp")]
)


def sample_relation() -> Relation:
    relation = Relation(SCHEMA)
    relation.append([1, "alice", 3.5, True, datetime(2015, 8, 31, 12, 0, tzinfo=timezone.utc)])
    relation.append([2, "bob, the builder", None, False, None])
    relation.append([3, 'quote "x"\nnewline', -1.25, None, datetime(2020, 1, 1, tzinfo=timezone.utc)])
    return relation


@pytest.mark.parametrize("codec", [CsvCodec(), BinaryCodec()], ids=["csv", "binary"])
class TestRoundTrip:
    def test_roundtrip_preserves_values(self, codec):
        original = sample_relation()
        decoded = codec.decode(codec.encode(original), SCHEMA)
        assert len(decoded) == len(original)
        assert decoded.rows[0]["id"] == 1
        assert decoded.rows[0]["name"] == "alice"
        assert decoded.rows[1]["score"] is None
        assert decoded.rows[1]["active"] is False
        assert decoded.rows[0]["active"] is True
        assert decoded.rows[2]["score"] == -1.25

    def test_empty_relation(self, codec):
        empty = Relation(SCHEMA)
        decoded = codec.decode(codec.encode(empty), SCHEMA)
        assert len(decoded) == 0

    def test_timestamps_survive(self, codec):
        original = sample_relation()
        decoded = codec.decode(codec.encode(original), SCHEMA)
        assert decoded.rows[0]["seen"].year == 2015
        assert decoded.rows[1]["seen"] is None


class TestCsvSpecifics:
    def test_quoting_of_delimiters_and_quotes(self):
        codec = CsvCodec()
        decoded = codec.decode(codec.encode(sample_relation()), SCHEMA)
        assert decoded.rows[1]["name"] == "bob, the builder"
        assert '"x"' in decoded.rows[2]["name"]

    def test_header_row_present(self):
        payload = CsvCodec().encode(sample_relation()).decode("utf-8")
        assert payload.splitlines()[0].startswith("id,")

    def test_width_mismatch_raises(self):
        payload = b"id,name\n1,alice,extra\n"
        with pytest.raises(CastError):
            CsvCodec().decode(payload, Schema([("id", "integer"), ("name", "text")]))

    def test_unparseable_value_raises(self):
        payload = b"id\nnot_a_number\n"
        with pytest.raises(CastError):
            CsvCodec().decode(payload, Schema([("id", "integer")]))


class TestBinarySpecifics:
    def test_binary_size_is_comparable_to_csv_for_numeric_data(self):
        schema = Schema([("i", "integer"), ("v", "float")])
        relation = Relation(schema, [[i, i * 1.5] for i in range(1000)])
        binary = BinaryCodec().encode(relation)
        csv = CsvCodec().encode(relation)
        # The binary frame is fixed-width per value; it must stay within a small
        # constant factor of the text size while avoiding any text parsing.
        assert len(binary) < len(csv) * 2.0

    def test_column_count_mismatch_raises(self):
        relation = Relation(Schema([("a", "integer")]), [[1]])
        payload = BinaryCodec().encode(relation)
        with pytest.raises(CastError):
            BinaryCodec().decode(payload, Schema([("a", "integer"), ("b", "integer")]))


_value_strategy = st.one_of(
    st.none(),
    st.integers(min_value=-(2 ** 31), max_value=2 ** 31),
    st.text(max_size=20),
)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(-10**6, 10**6), st.text(max_size=12),
                           st.floats(allow_nan=False, allow_infinity=False, width=32)),
                max_size=20))
def test_property_binary_roundtrip(rows):
    """Property: arbitrary (int, text, float) relations survive the binary codec."""
    schema = Schema([("a", "integer"), ("b", "text"), ("c", "float")])
    relation = Relation(schema, [list(r) for r in rows])
    decoded = BinaryCodec().decode(BinaryCodec().encode(relation), schema)
    assert [tuple(r.values) for r in decoded] == [tuple(r.values) for r in relation]


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(-10**6, 10**6),
                           st.text(alphabet=st.characters(blacklist_categories=("Cs", "Cc"),
                                                          blacklist_characters="\\"),
                                   max_size=12)),
                max_size=20))
def test_property_csv_roundtrip(rows):
    """Property: arbitrary (int, text) relations survive the CSV codec."""
    schema = Schema([("a", "integer"), ("b", "text")])
    relation = Relation(schema, [list(r) for r in rows])
    decoded = CsvCodec().decode(CsvCodec().encode(relation), schema)
    assert [tuple(r.values) for r in decoded] == [tuple(r.values) for r in relation]
