"""Tests for repro.common.types: parsing, inference, coercion and unification."""

from __future__ import annotations

from datetime import datetime, timezone

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import TypeMismatchError
from repro.common.types import DataType, coerce, common_type, infer_type, is_numeric, parse_type


class TestParseType:
    def test_parses_canonical_names(self):
        assert parse_type("integer") is DataType.INTEGER
        assert parse_type("float") is DataType.FLOAT
        assert parse_type("text") is DataType.TEXT
        assert parse_type("boolean") is DataType.BOOLEAN
        assert parse_type("timestamp") is DataType.TIMESTAMP

    def test_parses_engine_aliases(self):
        assert parse_type("bigint") is DataType.INTEGER
        assert parse_type("double") is DataType.FLOAT
        assert parse_type("varchar") is DataType.TEXT
        assert parse_type("bool") is DataType.BOOLEAN

    def test_parses_parameterized_types(self):
        assert parse_type("varchar(32)") is DataType.TEXT
        assert parse_type("decimal(10, 2)") is DataType.FLOAT

    def test_is_case_insensitive_and_passes_through_datatype(self):
        assert parse_type("INTEGER") is DataType.INTEGER
        assert parse_type(DataType.FLOAT) is DataType.FLOAT

    def test_unknown_type_raises(self):
        with pytest.raises(TypeMismatchError):
            parse_type("geometry")


class TestInferType:
    def test_infers_each_python_type(self):
        assert infer_type(None) is DataType.NULL
        assert infer_type(True) is DataType.BOOLEAN
        assert infer_type(3) is DataType.INTEGER
        assert infer_type(3.5) is DataType.FLOAT
        assert infer_type("abc") is DataType.TEXT
        assert infer_type(datetime(2015, 8, 31)) is DataType.TIMESTAMP

    def test_bool_is_not_integer(self):
        assert infer_type(True) is DataType.BOOLEAN

    def test_unknown_object_raises(self):
        with pytest.raises(TypeMismatchError):
            infer_type(object())


class TestCoerce:
    def test_none_is_always_allowed(self):
        for dtype in DataType:
            assert coerce(None, dtype) is None

    def test_integer_coercions(self):
        assert coerce("42", DataType.INTEGER) == 42
        assert coerce(3.0, DataType.INTEGER) == 3
        assert coerce(True, DataType.INTEGER) == 1

    def test_lossy_float_to_integer_raises(self):
        with pytest.raises(TypeMismatchError):
            coerce(3.5, DataType.INTEGER)

    def test_float_coercions(self):
        assert coerce("2.5", DataType.FLOAT) == 2.5
        assert coerce(2, DataType.FLOAT) == 2.0

    def test_text_coercions(self):
        assert coerce(12, DataType.TEXT) == "12"
        stamp = datetime(2015, 8, 31, tzinfo=timezone.utc)
        assert "2015-08-31" in coerce(stamp, DataType.TEXT)

    def test_boolean_coercions(self):
        assert coerce("true", DataType.BOOLEAN) is True
        assert coerce("no", DataType.BOOLEAN) is False
        assert coerce(0, DataType.BOOLEAN) is False
        with pytest.raises(TypeMismatchError):
            coerce("maybe", DataType.BOOLEAN)

    def test_timestamp_coercions(self):
        parsed = coerce("2015-08-31T12:00:00", DataType.TIMESTAMP)
        assert parsed.year == 2015
        from_epoch = coerce(0, DataType.TIMESTAMP)
        assert from_epoch.year == 1970
        with pytest.raises(TypeMismatchError):
            coerce("not a date", DataType.TIMESTAMP)

    def test_bad_numeric_strings_raise(self):
        with pytest.raises(TypeMismatchError):
            coerce("abc", DataType.INTEGER)
        with pytest.raises(TypeMismatchError):
            coerce("abc", DataType.FLOAT)


class TestCommonType:
    def test_same_type_is_identity(self):
        assert common_type(DataType.TEXT, DataType.TEXT) is DataType.TEXT

    def test_null_yields_other_type(self):
        assert common_type(DataType.NULL, DataType.FLOAT) is DataType.FLOAT
        assert common_type(DataType.INTEGER, DataType.NULL) is DataType.INTEGER

    def test_numeric_promotion(self):
        assert common_type(DataType.INTEGER, DataType.FLOAT) is DataType.FLOAT
        assert common_type(DataType.BOOLEAN, DataType.INTEGER) is DataType.INTEGER

    def test_text_absorbs_other_types(self):
        assert common_type(DataType.TEXT, DataType.INTEGER) is DataType.TEXT

    def test_incompatible_types_raise(self):
        with pytest.raises(TypeMismatchError):
            common_type(DataType.TIMESTAMP, DataType.BOOLEAN)

    def test_is_numeric(self):
        assert is_numeric(DataType.INTEGER)
        assert is_numeric(DataType.FLOAT)
        assert is_numeric(DataType.BOOLEAN)
        assert not is_numeric(DataType.TEXT)


@given(st.integers(min_value=-(2 ** 40), max_value=2 ** 40))
def test_integer_roundtrip_through_text(value):
    """Property: integers survive a round trip through the TEXT representation."""
    assert coerce(coerce(value, DataType.TEXT), DataType.INTEGER) == value


@given(st.floats(allow_nan=False, allow_infinity=False, width=32))
def test_float_coercion_idempotent(value):
    """Property: coercing a float to FLOAT twice equals coercing once."""
    once = coerce(value, DataType.FLOAT)
    assert coerce(once, DataType.FLOAT) == once
