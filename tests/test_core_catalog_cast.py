"""Tests for the BigDAWG catalog, shims and the CAST migrator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import CastError, DuplicateObjectError, ObjectNotFoundError
from repro.core.cast import CastMigrator
from repro.core.catalog import BigDawgCatalog
from repro.core.shims import ArrayShim, AssociativeShim, RelationalShim, TextShim, shim_for
from repro.engines.array import ArrayEngine
from repro.engines.keyvalue import KeyValueEngine
from repro.engines.relational import RelationalEngine


@pytest.fixture()
def catalog() -> BigDawgCatalog:
    cat = BigDawgCatalog()
    postgres = RelationalEngine("postgres")
    scidb = ArrayEngine("scidb")
    accumulo = KeyValueEngine("accumulo")
    cat.register_engine(postgres, ["relational", "myria"])
    cat.register_engine(scidb, ["array", "relational"])
    cat.register_engine(accumulo, ["text", "d4m"])
    postgres.execute("CREATE TABLE patients (id INTEGER PRIMARY KEY, age INTEGER)")
    postgres.execute("INSERT INTO patients VALUES (1, 64), (2, 70), (3, 41)")
    scidb.load_numpy("waves", np.arange(20, dtype=float).reshape(4, 5))
    accumulo.create_table("notes", text_indexed=True)
    accumulo.put("notes", "p1", "doctor", "n1", "patient very sick")
    return cat


class TestCatalog:
    def test_engine_registration_and_lookup(self, catalog):
        assert catalog.engine("postgres").kind == "relational"
        assert catalog.has_engine("SCIDB")
        with pytest.raises(ObjectNotFoundError):
            catalog.engine("mysql")
        with pytest.raises(DuplicateObjectError):
            catalog.register_engine(RelationalEngine("postgres"))

    def test_island_membership(self, catalog):
        relational = {e.name for e in catalog.island_engines("relational")}
        assert relational == {"postgres", "scidb"}
        assert catalog.islands_of_engine("accumulo") == ["d4m", "text"]
        catalog.add_island_member("d4m", "postgres")
        assert "postgres" in {e.name for e in catalog.island_engines("d4m")}
        with pytest.raises(ObjectNotFoundError):
            catalog.add_island_member("d4m", "mysql")

    def test_locate_registered_and_unregistered_objects(self, catalog):
        catalog.register_object("patients", "postgres", "table")
        assert catalog.locate("patients").engine_name == "postgres"
        # 'waves' is not registered but the engines are searched as a fallback.
        assert catalog.locate("waves").engine_name == "scidb"
        assert catalog.has_object("notes")
        assert not catalog.has_object("ghost")
        with pytest.raises(ObjectNotFoundError):
            catalog.locate("ghost")

    def test_duplicate_object_registration(self, catalog):
        catalog.register_object("patients", "postgres", "table")
        with pytest.raises(DuplicateObjectError):
            catalog.register_object("patients", "scidb", "array")
        catalog.register_object("patients", "scidb", "array", replace=True)
        assert catalog.locate("patients").engine_name == "scidb"

    def test_move_object_and_describe(self, catalog):
        catalog.register_object("patients", "postgres", "table")
        catalog.move_object("patients", "scidb", "array")
        assert catalog.locate("patients").engine_name == "scidb"
        description = catalog.describe()
        assert "postgres" in description["engines"]
        assert "relational" in description["islands"]

    def test_objects_in_engine_includes_unregistered(self, catalog):
        assert "patients" in catalog.objects_in_engine("postgres")
        assert "waves" in catalog.objects_in_engine("scidb")


class TestShims:
    def test_relational_shim_pushdown_and_fetch(self, catalog):
        postgres_shim = RelationalShim(catalog.engine("postgres"))
        assert postgres_shim.supports_native()
        result = postgres_shim.execute_sql("SELECT count(*) AS n FROM patients")
        assert result.rows[0]["n"] == 3
        array_shim = RelationalShim(catalog.engine("scidb"))
        assert not array_shim.supports_native()
        relation = array_shim.fetch_relation("waves")
        assert len(relation) == 20
        from repro.common.errors import UnsupportedOperationError

        with pytest.raises(UnsupportedOperationError):
            array_shim.execute_sql("SELECT 1")

    def test_array_shim(self, catalog):
        shim = ArrayShim(catalog.engine("scidb"))
        stored = shim.fetch_array("waves")
        assert stored.schema.shape == (4, 5)

    def test_text_shim(self, catalog):
        shim = TextShim(catalog.engine("accumulo"))
        assert shim.supports_native()
        assert shim.rows_with_min_documents("notes", "very sick", 1) == ["p1"]

    def test_associative_shim_from_each_model(self, catalog):
        kv = AssociativeShim(catalog.engine("accumulo")).fetch_associative("notes")
        assert kv.get("p1", "doctor:n1") == "patient very sick"
        rel = AssociativeShim(catalog.engine("postgres")).fetch_associative("patients")
        assert rel.get("1", "age") == 64
        arr = AssociativeShim(catalog.engine("scidb")).fetch_associative("waves")
        assert arr.nnz() == 20

    def test_shim_factory(self, catalog):
        assert isinstance(shim_for(catalog.engine("postgres"), "relational"), RelationalShim)
        assert isinstance(shim_for(catalog.engine("scidb"), "array"), ArrayShim)
        assert isinstance(shim_for(catalog.engine("accumulo"), "text"), TextShim)
        assert isinstance(shim_for(catalog.engine("accumulo"), "d4m"), AssociativeShim)
        from repro.common.errors import UnsupportedOperationError

        with pytest.raises(UnsupportedOperationError):
            shim_for(catalog.engine("postgres"), "quantum")


class TestCastMigrator:
    def test_binary_and_csv_casts_move_all_rows(self, catalog):
        migrator = CastMigrator(catalog)
        catalog.register_object("patients", "postgres", "table")
        record = migrator.cast("patients", "accumulo", method="binary")
        assert record.rows == 3 and record.method == "binary"
        assert catalog.engine("accumulo").has_object("patients")
        record_csv = migrator.cast("waves", "postgres", method="csv", target_name="wave_rows")
        assert record_csv.rows == 20
        assert catalog.engine("postgres").has_object("wave_rows")
        assert migrator.total_bytes_moved() > 0
        assert len(migrator.casts_between("postgres", "accumulo")) == 1

    def test_cast_into_array_engine_with_dimensions(self, catalog):
        migrator = CastMigrator(catalog)
        catalog.register_object("patients", "postgres", "table")
        migrator.cast("patients", "scidb", dimensions=["id"])
        array = catalog.engine("scidb").array("patients")
        assert array.schema.dimensions[0].name == "id"

    def test_cast_with_drop_source_moves_catalog_entry(self, catalog):
        migrator = CastMigrator(catalog)
        catalog.register_object("patients", "postgres", "table")
        migrator.cast("patients", "accumulo", drop_source=True)
        assert not catalog.engine("postgres").has_object("patients")
        assert catalog.locate("patients").engine_name == "accumulo"

    def test_cast_to_same_engine_rejected(self, catalog):
        migrator = CastMigrator(catalog)
        catalog.register_object("patients", "postgres", "table")
        with pytest.raises(CastError):
            migrator.cast("patients", "postgres")

    def test_unknown_method_rejected(self, catalog):
        migrator = CastMigrator(catalog)
        catalog.register_object("patients", "postgres", "table")
        with pytest.raises(CastError):
            migrator.cast("patients", "accumulo", method="carrier_pigeon")

    def test_csv_via_tempfile(self, catalog):
        migrator = CastMigrator(catalog)
        catalog.register_object("patients", "postgres", "table")
        record = migrator.cast("patients", "accumulo", method="csv", use_tempfile=True)
        assert record.bytes_moved > 0

    def test_binary_and_csv_produce_identical_destination_content(self, catalog):
        migrator = CastMigrator(catalog)
        catalog.register_object("patients", "postgres", "table")
        migrator.cast("patients", "accumulo", method="binary", target_name="via_binary")
        migrator.cast("patients", "accumulo", method="csv", target_name="via_csv")
        accumulo = catalog.engine("accumulo")
        binary_rows = sorted(str(e.value) for e in accumulo.scan("via_binary"))
        csv_rows = sorted(str(e.value) for e in accumulo.scan("via_csv"))
        assert binary_rows == csv_rows
