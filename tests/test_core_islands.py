"""Tests for the islands: relational, array, text, D4M, Myria and degenerate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ObjectNotFoundError, ParseError, PlanningError
from repro.common.schema import Row
from repro.core.bigdawg import BigDawg
from repro.core.islands.myria import MyriaPlan
from repro.engines.array import ArrayEngine
from repro.engines.keyvalue import KeyValueEngine
from repro.engines.relational import RelationalEngine


@pytest.fixture()
def bigdawg() -> BigDawg:
    bd = BigDawg()
    postgres = RelationalEngine("postgres")
    scidb = ArrayEngine("scidb")
    accumulo = KeyValueEngine("accumulo")
    bd.add_engine(postgres)
    bd.add_engine(scidb)
    bd.add_engine(accumulo)
    postgres.execute("CREATE TABLE patients (id INTEGER PRIMARY KEY, age INTEGER, race TEXT)")
    postgres.execute(
        "INSERT INTO patients VALUES (1, 64, 'white'), (2, 70, 'black'), (3, 41, 'asian'), (4, 85, 'white')"
    )
    postgres.execute("CREATE TABLE rx (pid INTEGER, drug TEXT)")
    postgres.execute("INSERT INTO rx VALUES (1, 'heparin'), (2, 'aspirin'), (2, 'heparin')")
    scidb.load_numpy("waves", np.vstack([np.linspace(0, 1, 50), np.linspace(1, 2, 50)]))
    accumulo.create_table("notes", text_indexed=True)
    accumulo.put("notes", "p1", "doctor", "n1", "patient very sick")
    accumulo.put("notes", "p1", "doctor", "n2", "still very sick")
    accumulo.put("notes", "p2", "nurse", "n1", "doing fine")
    return bd


class TestRelationalIsland:
    def test_native_pushdown_when_single_sql_engine(self, bigdawg):
        island = bigdawg.island("relational")
        before = bigdawg.engine("postgres").queries_executed
        result = island.execute("SELECT count(*) AS n FROM patients WHERE age > 60")
        assert result.rows[0]["n"] == 3
        assert bigdawg.engine("postgres").queries_executed == before + 1

    def test_sql_over_array_object_via_shim(self, bigdawg):
        island = bigdawg.island("relational")
        result = island.execute("SELECT count(*) AS n FROM waves WHERE value > 1.0")
        assert result.rows[0]["n"] == 49

    def test_cross_engine_join(self, bigdawg):
        island = bigdawg.island("relational")
        result = island.execute(
            "SELECT p.id, w.value FROM patients p JOIN waves w ON p.id = w.i WHERE w.j = 0"
        )
        assert len(result) == 1  # only patient id 1 matches array row index 1

    def test_referenced_tables_extraction(self, bigdawg):
        island = bigdawg.island("relational")
        tables = island.referenced_tables(
            "SELECT * FROM a JOIN b ON a.x = b.x JOIN (SELECT * FROM c) s ON s.y = a.y"
        )
        assert tables == ["a", "b", "c"]
        assert island.referenced_tables("UPDATE t SET x = 1") == ["t"]

    def test_can_answer(self, bigdawg):
        island = bigdawg.island("relational")
        assert island.can_answer("SELECT 1")
        assert not island.can_answer("scan(waves)")


class TestArrayIsland:
    def test_afl_execution_to_relation(self, bigdawg):
        island = bigdawg.island("array")
        result = island.execute("aggregate(waves, avg(value), count(value))")
        assert result.rows[0]["count(value)"] == 100.0
        grouped = island.execute("aggregate(waves, avg(value), i)")
        assert len(grouped) == 2

    def test_array_result_flattened(self, bigdawg):
        island = bigdawg.island("array")
        result = island.execute("filter(waves, value > 1.5)")
        assert set(result.schema.names) == {"i", "j", "value"}
        assert all(row["value"] > 1.5 for row in result)

    def test_object_not_reachable_through_island(self, bigdawg):
        island = bigdawg.island("array")
        with pytest.raises(ObjectNotFoundError):
            island.execute("scan(patients)")  # patients lives in postgres, not an array engine

    def test_can_answer(self, bigdawg):
        island = bigdawg.island("array")
        assert island.can_answer("aggregate(waves, avg(value))")
        assert not island.can_answer("SELECT 1")


class TestTextIsland:
    def test_phrase_search_and_min_documents(self, bigdawg):
        island = bigdawg.island("text")
        hits = island.execute('SEARCH notes FOR "very sick"')
        assert len(hits) == 2
        rows = island.execute('SEARCH notes FOR "very sick" MIN 2')
        assert [r["row"] for r in rows] == ["p1"]

    def test_conjunctive_search(self, bigdawg):
        island = bigdawg.island("text")
        hits = island.execute('SEARCH notes FOR "patient" AND "sick"')
        assert [r["row"] for r in hits.rows] == ["p1"]

    def test_malformed_query(self, bigdawg):
        island = bigdawg.island("text")
        with pytest.raises(ParseError):
            island.execute("FIND ME something")


class TestD4MIsland:
    def test_fetch_and_textual_queries(self, bigdawg):
        island = bigdawg.island("d4m")
        assoc = island.fetch("notes")
        assert assoc.nnz() == 3
        degrees = island.execute("ASSOC notes DEGREE ROWS")
        by_key = {r["key"]: r["degree"] for r in degrees}
        assert by_key == {"p1": 2.0, "p2": 1.0}
        subset = island.execute("ASSOC patients ROWS 1,2")
        assert set(r["row"] for r in subset) == {"1", "2"}
        filtered = island.execute("ASSOC patients COLS age FILTER > 60")
        assert {r["row"] for r in filtered} == {"1", "2", "4"}


class TestMyriaIsland:
    def test_plan_execution_with_join_and_group_by(self, bigdawg):
        island = bigdawg.island("myria")
        plan = (
            MyriaPlan()
            .scan("patients")
            .select(lambda row: row["age"] > 50)
            .join(MyriaPlan().scan("rx"), "id", "pid")
            .group_by(["l.race"], {"prescriptions": ("count", "*")})
        )
        result = island.execute(plan)
        by_race = {r["l.race"]: r["prescriptions"] for r in result}
        assert by_race == {"white": 1, "black": 2}

    def test_iteration_reaches_fixpoint(self, bigdawg):
        island = bigdawg.island("myria")
        seed = island.execute(MyriaPlan().scan("patients").project(["id"]))

        def next_plan(previous):
            # A no-op plan over the same table: the fixpoint is reached immediately.
            return MyriaPlan().scan("patients").project(["id"])

        result, iterations = island.iterate(next_plan, seed, max_iterations=10)
        assert iterations == 1
        assert len(result) == 4

    def test_plan_must_start_with_scan(self, bigdawg):
        island = bigdawg.island("myria")
        with pytest.raises(PlanningError):
            island.execute(MyriaPlan().project(["id"]))
        with pytest.raises(PlanningError):
            island.execute("SELECT 1")


class TestDegenerateIslands:
    def test_relational_passthrough(self, bigdawg):
        island = bigdawg.degenerate_island("postgres")
        result = island.execute("SELECT max(age) AS m FROM patients")
        assert result.rows[0]["m"] == 85

    def test_array_passthrough_native(self, bigdawg):
        island = bigdawg.degenerate_island("scidb")
        native = island.execute_native("aggregate(waves, max(value))")
        assert native["max(value)"] == pytest.approx(2.0)

    def test_keyvalue_mini_language(self, bigdawg):
        island = bigdawg.degenerate_island("accumulo")
        row = island.execute("GET notes p1")
        assert len(row) == 2
        scan = island.execute("SCAN notes")
        assert len(scan) == 3
        from repro.common.errors import UnsupportedOperationError

        with pytest.raises(UnsupportedOperationError):
            island.execute("DELETE notes")

    def test_call_escape_hatch(self, bigdawg):
        island = bigdawg.degenerate_island("accumulo")
        count = island.call(lambda engine: len(engine.scan("notes")))
        assert count == 3

    def test_island_lookup_by_both_names(self, bigdawg):
        assert bigdawg.island("degenerate_postgres") is bigdawg.degenerate_island("postgres")
        with pytest.raises(ObjectNotFoundError):
            bigdawg.island("degenerate_mysql")
