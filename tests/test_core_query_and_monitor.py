"""Tests for the SCOPE/CAST language, the cross-island planner, the monitor and semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ParseError, PlanningError
from repro.core.bigdawg import BigDawg
from repro.core.monitor import ExecutionMonitor
from repro.core.query.language import parse_query, parse_scope
from repro.core.query.planner import CastStep, IslandQueryStep
from repro.core.semantics import ProbeCase, SemanticProber
from repro.engines.array import ArrayEngine
from repro.engines.keyvalue import KeyValueEngine
from repro.engines.relational import RelationalEngine


# ----------------------------------------------------------------- language
class TestQueryLanguage:
    def test_parse_scope_and_casts(self):
        scope = parse_scope(
            "RELATIONAL(SELECT * FROM CAST(waves, relational) WHERE value > 5)"
        )
        assert scope.island == "relational"
        assert len(scope.casts) == 1
        assert scope.casts[0].object_name == "waves"
        assert scope.casts[0].target_island == "relational"
        assert "CAST" not in scope.body_without_casts

    def test_bigdawg_wrapper_unwrapped(self):
        scope = parse_scope("BIGDAWG(ARRAY(scan(waves)))")
        assert scope.island == "array"

    def test_nested_parentheses_preserved(self):
        scope = parse_scope("RELATIONAL(SELECT count(*) FROM (SELECT id FROM t) s)")
        assert scope.body.count("(") == scope.body.count(")")

    def test_with_bindings(self):
        query = parse_query(
            "WITH seniors = RELATIONAL(SELECT id FROM patients WHERE age > 65) "
            "ARRAY(aggregate(waves, avg(value)))"
        )
        assert len(query.bindings) == 1
        assert query.bindings[0][0] == "seniors"
        assert query.final.island == "array"

    def test_parse_errors(self):
        with pytest.raises(ParseError):
            parse_scope("QUANTUM(SELECT 1)")
        with pytest.raises(ParseError):
            parse_scope("RELATIONAL(SELECT 1")
        with pytest.raises(ParseError):
            parse_scope("not a scope at all")
        with pytest.raises(ParseError):
            parse_query("WITH x = RELATIONAL(SELECT 1)")  # missing final scope


# ------------------------------------------------------------------ planner
@pytest.fixture()
def bigdawg() -> BigDawg:
    bd = BigDawg()
    postgres = RelationalEngine("postgres")
    scidb = ArrayEngine("scidb")
    accumulo = KeyValueEngine("accumulo")
    bd.add_engine(postgres, islands=["relational", "myria", "d4m"])
    # Note: scidb deliberately NOT a member of the relational island here, so a
    # CAST into the relational island is actually required.
    bd.add_engine(scidb, islands=["array"])
    bd.add_engine(accumulo, islands=["text", "d4m"])
    postgres.execute("CREATE TABLE patients (id INTEGER PRIMARY KEY, age INTEGER)")
    postgres.execute("INSERT INTO patients VALUES (1, 64), (2, 70), (3, 41)")
    scidb.load_numpy("waves", np.arange(12, dtype=float).reshape(3, 4))
    accumulo.create_table("notes", text_indexed=True)
    accumulo.put("notes", "p1", "doctor", "n1", "very sick patient")
    return bd


class TestCrossIslandPlanner:
    def test_plan_contains_cast_step_when_needed(self, bigdawg):
        plan = bigdawg.plan(
            "RELATIONAL(SELECT count(*) AS n FROM CAST(waves, relational) WHERE value > 5)"
        )
        kinds = [type(step) for step in plan.steps]
        assert kinds == [CastStep, IslandQueryStep]
        assert "CAST waves" in plan.explain()

    def test_cast_skipped_when_already_reachable(self, bigdawg):
        plan = bigdawg.plan("RELATIONAL(SELECT count(*) AS n FROM CAST(patients, relational))")
        assert [type(step) for step in plan.steps] == [IslandQueryStep]

    def test_execute_cross_island_query(self, bigdawg):
        result = bigdawg.execute(
            "RELATIONAL(SELECT count(*) AS n FROM CAST(waves, relational) WHERE value > 5)"
        )
        assert result.rows[0]["n"] == 6
        # The cast materialized the array as a table in the relational engine.
        assert bigdawg.engine("postgres").has_object("waves")
        assert len(bigdawg.migrator.history) == 1

    def test_with_binding_visible_to_later_scope(self, bigdawg):
        result = bigdawg.execute(
            "WITH seniors = RELATIONAL(SELECT id, age FROM patients WHERE age >= 64) "
            "RELATIONAL(SELECT count(*) AS n FROM seniors WHERE age >= 70)"
        )
        assert result.rows[0]["n"] == 1

    def test_unscoped_query_routed_by_can_answer(self, bigdawg):
        relational = bigdawg.execute("SELECT count(*) AS n FROM patients")
        assert relational.rows[0]["n"] == 3
        text = bigdawg.execute('SEARCH notes FOR "very sick"')
        assert len(text) == 1
        with pytest.raises(PlanningError):
            bigdawg.execute("?? not a query in any island language ??")

    def test_explain_unscoped(self, bigdawg):
        assert "RELATIONAL" in bigdawg.explain("SELECT 1")

    def test_plan_timings_recorded(self, bigdawg):
        plan = bigdawg.plan("ARRAY(aggregate(waves, avg(value)))")
        bigdawg._planner.execute_plan(plan)
        assert len(plan.timings) == len(plan.steps)


# ------------------------------------------------------------------ monitor
class TestMonitorAndAdvisor:
    def test_monitor_statistics(self):
        monitor = ExecutionMonitor()
        monitor.record("sql_filter", "patients", "postgres", 0.010)
        monitor.record("sql_filter", "patients", "postgres", 0.014)
        monitor.record("sql_filter", "patients", "scidb", 0.050)
        monitor.record("linear_algebra", "patients", "scidb", 0.002)
        assert monitor.mean_latency("sql_filter", "patients", "postgres") == pytest.approx(0.012)
        assert monitor.dominant_query_class("patients") == "sql_filter"
        best_engine, best = monitor.best_engine("sql_filter", "patients")
        assert best_engine == "postgres" and best == pytest.approx(0.012)
        assert monitor.best_engine("text_search", "patients") is None

    def test_probe_records_per_engine_latencies(self):
        monitor = ExecutionMonitor()
        latencies = monitor.probe(
            "agg", "waves",
            {"fast": lambda: sum(range(10)), "slow": lambda: sum(range(200_000))},
        )
        assert latencies["fast"] < latencies["slow"]
        assert len(monitor.observations) == 2

    def test_advisor_recommends_and_applies_migration(self, bigdawg):
        # Simulate observed latencies: waves (currently in scidb) is much faster
        # to query in scidb for linear algebra, so no move; patients is faster in
        # scidb for linear algebra, so a move is recommended.
        monitor = bigdawg.monitor
        monitor.record("linear_algebra", "patients", "postgres", 0.5)
        monitor.record("linear_algebra", "patients", "postgres", 0.4)
        monitor.record("linear_algebra", "patients", "scidb", 0.01)
        recommendation = bigdawg.advisor.recommend("patients")
        assert recommendation.target_engine == "scidb"
        assert recommendation.expected_speedup > 10
        moved = bigdawg.advisor.apply(recommendation, dimensions=["id"])
        assert moved is True
        assert bigdawg.catalog.locate("patients").engine_name == "scidb"
        assert bigdawg.engine("scidb").has_object("patients")

    def test_advisor_skips_pointless_moves(self, bigdawg):
        monitor = bigdawg.monitor
        monitor.record("sql_filter", "patients", "postgres", 0.001)
        monitor.record("sql_filter", "patients", "scidb", 0.100)
        recommendation = bigdawg.advisor.recommend("patients")
        assert recommendation.target_engine == "postgres"
        assert recommendation.worthwhile is False
        assert bigdawg.advisor.apply(recommendation) is False

    def test_rebalance_honours_minimum_speedup(self, bigdawg):
        monitor = bigdawg.monitor
        monitor.record("linear_algebra", "patients", "postgres", 0.011)
        monitor.record("linear_algebra", "patients", "scidb", 0.010)
        moved = bigdawg.advisor.rebalance(["patients"], minimum_speedup=1.5)
        assert moved == []

    def test_recommend_without_observations(self, bigdawg):
        assert bigdawg.advisor.recommend("patients") is None


# ----------------------------------------------------------------- semantics
class TestSemanticProber:
    def test_common_sub_island_detected(self, bigdawg):
        prober = SemanticProber(bigdawg)
        cases = [
            ProbeCase(
                name="count_waves_cells",
                functionality="count",
                island_queries={
                    "relational": "SELECT count(*) AS n FROM waves",
                    "array": "aggregate(waves, count(value))",
                },
                normalizer=lambda rel: int(float(rel.rows[0].values[0])),
            ),
        ]
        # The relational island cannot reach 'waves' in this wiring (scidb is
        # array-only), so first make it reachable by adding the membership.
        bigdawg.catalog.add_island_member("relational", "scidb")
        agreements = prober.common_sub_islands(cases)
        assert agreements == {"count": ["array", "relational"]}

    def test_disagreeing_islands_not_grouped(self, bigdawg):
        bigdawg.catalog.add_island_member("relational", "scidb")
        prober = SemanticProber(bigdawg)
        cases = [
            ProbeCase(
                name="different_semantics",
                functionality="sum",
                island_queries={
                    "relational": "SELECT sum(value) AS s FROM waves WHERE value > 5",
                    "array": "aggregate(waves, sum(value))",
                },
                normalizer=lambda rel: round(float(rel.rows[0].values[0]), 6),
            ),
        ]
        assert prober.common_sub_islands(cases) == {}

    def test_failed_probe_recorded_not_raised(self, bigdawg):
        prober = SemanticProber(bigdawg)
        case = ProbeCase(
            name="broken",
            functionality="count",
            island_queries={"relational": "SELECT * FROM table_that_does_not_exist"},
        )
        outcomes = prober.run_case(case)
        assert outcomes[0].succeeded is False
        assert outcomes[0].error
