"""Tests for D4M associative arrays and their algebra."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SchemaError
from repro.d4m import AssociativeArray


@pytest.fixture()
def prescriptions() -> AssociativeArray:
    return AssociativeArray(
        [
            ("p1", "aspirin", 2),
            ("p1", "heparin", 1),
            ("p2", "aspirin", 1),
            ("p3", "insulin", 4),
        ]
    )


class TestBasics:
    def test_set_get_delete(self):
        a = AssociativeArray()
        a.set("r", "c", 1.5)
        assert a.get("r", "c") == 1.5
        assert a.get("r", "missing", 0) == 0
        a.set("r", "c", None)  # None deletes
        assert len(a) == 0

    def test_keys_and_entries_sorted(self, prescriptions):
        assert prescriptions.row_keys == ["p1", "p2", "p3"]
        assert prescriptions.col_keys == ["aspirin", "heparin", "insulin"]
        entries = list(prescriptions.entries())
        assert (entries[0].row, entries[0].col) == ("p1", "aspirin")

    def test_copy_is_independent(self, prescriptions):
        clone = prescriptions.copy()
        clone.set("p9", "x", 1)
        assert prescriptions.get("p9", "x") is None
        assert clone != prescriptions


class TestSubsetting:
    def test_subset_rows_exact_and_prefix(self, prescriptions):
        subset = prescriptions.subset_rows(["p1", "p3"])
        assert subset.row_keys == ["p1", "p3"]
        prefixed = prescriptions.subset_rows("p*")
        assert prefixed.row_keys == ["p1", "p2", "p3"]
        assert prescriptions.subset_rows("q*").nnz() == 0

    def test_subset_cols_and_filter(self, prescriptions):
        aspirin = prescriptions.subset_cols("aspirin")
        assert aspirin.nnz() == 2
        heavy = prescriptions.filter_values(lambda v: v >= 2)
        assert {(e.row, e.col) for e in heavy.entries()} == {("p1", "aspirin"), ("p3", "insulin")}


class TestAlgebra:
    def test_add_unions_keys(self, prescriptions):
        other = AssociativeArray([("p1", "aspirin", 3), ("p4", "aspirin", 1)])
        total = prescriptions.add(other)
        assert total.get("p1", "aspirin") == 5
        assert total.get("p4", "aspirin") == 1

    def test_multiply_elementwise_intersects(self, prescriptions):
        other = AssociativeArray([("p1", "aspirin", 10), ("p9", "x", 1)])
        product = prescriptions.multiply_elementwise(other)
        assert product.nnz() == 1
        assert product.get("p1", "aspirin") == 20

    def test_matmul_counts_shared_columns(self, prescriptions):
        # A @ A.T: entry (p1, p2) counts drugs shared by p1 and p2 weighted by doses.
        co = prescriptions.matmul(prescriptions.transpose())
        assert co.get("p1", "p2") == 2  # aspirin 2 * 1
        assert co.get("p1", "p3") is None
        assert co.get("p1", "p1") == 5  # 2*2 + 1*1

    def test_matmul_matches_dense_matmul(self, prescriptions):
        matrix, rows, cols = prescriptions.to_matrix()
        dense = matrix @ matrix.T
        assoc = prescriptions.matmul(prescriptions.transpose())
        rebuilt, r2, _c2 = assoc.to_matrix()
        # Compare only the nonzero structure common to both labelings.
        for i, row_a in enumerate(rows):
            for j, row_b in enumerate(rows):
                expected = dense[i, j]
                actual = assoc.get(row_a, row_b) or 0.0
                assert actual == pytest.approx(expected)

    def test_degrees(self, prescriptions):
        assert prescriptions.sum_rows() == {"p1": 3.0, "p2": 1.0, "p3": 4.0}
        assert prescriptions.sum_cols()["aspirin"] == 3.0

    def test_degrees_with_text_values_count_presence(self):
        notes = AssociativeArray([("p1", "n1", "sick"), ("p1", "n2", "better"), ("p2", "n1", "fine")])
        assert notes.sum_rows() == {"p1": 2.0, "p2": 1.0}

    def test_numeric_algebra_rejects_text(self):
        notes = AssociativeArray([("p1", "n1", "sick")])
        with pytest.raises(SchemaError):
            notes.matmul(notes.transpose())


class TestConversions:
    def test_matrix_roundtrip(self, prescriptions):
        matrix, rows, cols = prescriptions.to_matrix()
        rebuilt = AssociativeArray.from_matrix(matrix, rows, cols)
        assert rebuilt == prescriptions.filter_values(lambda v: True)

    def test_from_matrix_shape_check(self):
        with pytest.raises(SchemaError):
            AssociativeArray.from_matrix(np.zeros((2, 2)), ["a"], ["b", "c"])

    def test_from_edges_builds_multigraph_counts(self):
        graph = AssociativeArray.from_edges([("a", "b"), ("a", "b"), ("b", "c")])
        assert graph.get("a", "b") == 2
        assert graph.sum_rows()["a"] == 2


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.sampled_from("abcd"), st.sampled_from("wxyz"),
                           st.integers(1, 9)), max_size=25))
def test_property_transpose_is_involution(entries):
    """Property: transposing twice gives back the original associative array."""
    array = AssociativeArray()
    for row, col, value in entries:
        array.set(row, col, value)
    assert array.transpose().transpose() == array


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.sampled_from("abc"), st.sampled_from("xyz"),
                           st.integers(1, 5)), max_size=20),
       st.lists(st.tuples(st.sampled_from("abc"), st.sampled_from("xyz"),
                           st.integers(1, 5)), max_size=20))
def test_property_add_is_commutative(left_entries, right_entries):
    """Property: element-wise addition of associative arrays is commutative."""
    left = AssociativeArray()
    right = AssociativeArray()
    for row, col, value in left_entries:
        left.set(row, col, left.get(row, col, 0) + value)
    for row, col, value in right_entries:
        right.set(row, col, right.get(row, col, 0) + value)
    assert left.add(right) == right.add(left)
