"""Degraded-mode survival: replica-aware failover, cooperative cancellation,
adaptive retry budgets, and the fault-injector's timed outages.

The invariants under test extend the chaos suite's contract:

* a CAST without ``drop_source`` leaves the source as a queryable replica,
  byte-identical to the copy at the destination, and a write through the
  island invalidates every stale replica;
* an outage on a primary re-routes reads to a fresh healthy replica — real
  re-execution flagged by a ``failover`` trace span, never a stale cache hit,
  and byte-identical to the healthy-path answer;
* a timed-out or client-abandoned query stops at the next batch/chunk
  boundary, leaving no shadow objects, no open spill files and no catalog
  changes;
* a flapping engine exhausts its retry budget and stops amplifying load,
  while healthy engines keep their full budgets.
"""

from __future__ import annotations

import random

import pytest

from repro.common.cancellation import CancellationToken, cancel_scope
from repro.common.errors import (
    DeadlineExceededError,
    EngineUnavailableError,
    QueryCancelledError,
    TransientEngineError,
)
from repro.common.serialization import BinaryCodec
from repro.core.bigdawg import BigDawg
from repro.engines.relational import RelationalEngine
from repro.engines.relational import morsel
from repro.runtime import (
    EngineResilience,
    FaultInjector,
    InjectedFault,
    PolystoreRuntime,
    RetryBudget,
    RetryPolicy,
)


class FakeClock:
    """A manually advanced clock (reads do not move time)."""

    def __init__(self) -> None:
        self.t = 0.0

    def now(self) -> float:
        return self.t

    def advance(self, seconds: float) -> None:
        self.t += seconds


class TickingClock:
    """A clock that advances on every read — each poll is one 'second'.

    Deadline checks read the clock, so a deadline of N expires after ~N
    polls: deterministic mid-stream expiry without wall-clock sleeps.
    """

    def __init__(self, step: float = 1.0) -> None:
        self.t = 0.0
        self.step = step

    def now(self) -> float:
        self.t += self.step
        return self.t


@pytest.fixture()
def polystore():
    """Two relational engines in one island, patients on postgres only."""
    bd = BigDawg()
    postgres = RelationalEngine("postgres")
    mysql = RelationalEngine("mysql")
    bd.add_engine(postgres, islands=["relational"])
    bd.add_engine(mysql, islands=["relational"])
    postgres.execute("CREATE TABLE patients (id INTEGER PRIMARY KEY, age INTEGER)")
    postgres.execute(
        "INSERT INTO patients VALUES (1, 64), (2, 70), (3, 41), (4, 77)"
    )
    return bd, postgres, mysql


def fast_runtime(bd: BigDawg, **overrides) -> PolystoreRuntime:
    options = dict(
        workers=2,
        resilience=EngineResilience(
            retry=RetryPolicy(max_attempts=1), failure_threshold=1,
            cooldown_s=60.0,
        ),
    )
    options.update(overrides)
    return PolystoreRuntime(bd, **options)


def assert_no_shadows(*engines) -> None:
    for engine in engines:
        shadows = [n for n in engine.list_objects() if "__cast_shadow__" in n]
        assert shadows == [], f"leftover shadows on {engine.name!r}: {shadows}"


# --------------------------------------------------------- replica catalog
class TestReplicaCatalog:
    def test_cast_without_drop_keeps_source_as_byte_identical_replica(
        self, polystore
    ):
        bd, postgres, mysql = polystore
        bd.migrator.cast("patients", "mysql")
        # Primary unchanged; the destination is registered as a replica.
        assert bd.catalog.locate("patients").engine_name == "postgres"
        replicas = bd.catalog.replicas("patients")
        assert [loc.engine_name for loc in replicas] == ["mysql"]
        # Both locations answer, byte for byte.
        codec = BinaryCodec()
        assert codec.encode(postgres.export_relation("patients")) == codec.encode(
            mysql.export_relation("patients")
        )
        # Both copies are fresh.
        fresh = bd.catalog.fresh_locations("patients")
        assert sorted(loc.engine_name for loc in fresh) == ["mysql", "postgres"]

    def test_island_write_invalidates_replicas(self, polystore):
        bd, postgres, mysql = polystore
        bd.migrator.cast("patients", "mysql")
        runtime = fast_runtime(bd)
        try:
            runtime.execute("RELATIONAL(INSERT INTO patients VALUES (5, 30))")
        finally:
            runtime.shutdown()
        fresh = bd.catalog.fresh_locations("patients")
        # Only the written copy (the primary) is still fresh.
        assert [loc.engine_name for loc in fresh] == ["postgres"]
        assert bd.catalog.locate_for_read("patients").engine_name == "postgres"
        # Re-replicating refreshes the stale copy.
        bd.migrator.cast("patients", "mysql")
        fresh = bd.catalog.fresh_locations("patients")
        assert sorted(loc.engine_name for loc in fresh) == ["mysql", "postgres"]

    def test_stale_replica_is_never_served_during_an_outage(self, polystore):
        bd, postgres, mysql = polystore
        bd.migrator.cast("patients", "mysql")
        runtime = fast_runtime(bd)
        injector = FaultInjector()
        try:
            # The write makes the mysql replica stale …
            runtime.execute("RELATIONAL(INSERT INTO patients VALUES (5, 30))")
            injector.outage()
            injector.install(postgres)
            # … so downing the primary must surface the outage, not quietly
            # answer from a replica missing the write.
            with pytest.raises((EngineUnavailableError, TransientEngineError)):
                runtime.execute(
                    "RELATIONAL(SELECT count(*) AS n FROM patients)",
                    use_cache=False,
                )
        finally:
            injector.uninstall()
            runtime.shutdown()


# -------------------------------------------------------- failover routing
class TestFailoverRouting:
    def test_outage_mid_plan_fails_over_to_replica(self, polystore):
        bd, postgres, mysql = polystore
        bd.migrator.cast("patients", "mysql")
        runtime = fast_runtime(bd)
        injector = FaultInjector()
        query = "RELATIONAL(SELECT count(*) AS n FROM patients)"
        try:
            healthy = runtime.execute(query, use_cache=False)
            assert healthy.rows[0]["n"] == 4
            injector.outage()
            injector.install(postgres)
            served_before = mysql.queries_executed
            result, tracer = runtime.trace(query)
            # Same answer, actually re-executed on the replica engine —
            # failover, not a stale cache read.
            assert [tuple(r.values) for r in result.rows] == [
                tuple(r.values) for r in healthy.rows
            ]
            assert mysql.queries_executed > served_before
            (span,) = tracer.spans("failover")
            assert span.attrs["from_engines"] == "postgres"
            assert span.attrs["to_engines"] == "mysql"
            snapshot = runtime.metrics.snapshot()
            assert snapshot["failover_total"] >= 1
            assert snapshot["failover_by_engine"].get("postgres", 0) >= 1
        finally:
            injector.uninstall()
            runtime.shutdown()

    def test_no_replica_means_the_outage_still_surfaces(self, polystore):
        bd, postgres, mysql = polystore
        runtime = fast_runtime(bd)
        injector = FaultInjector()
        try:
            injector.outage()
            injector.install(postgres)
            with pytest.raises(EngineUnavailableError):
                runtime.execute(
                    "RELATIONAL(SELECT count(*) AS n FROM patients)",
                    use_cache=False,
                )
            assert runtime.metrics.snapshot()["failover_total"] == 0
        finally:
            injector.uninstall()
            runtime.shutdown()


# ---------------------------------------------------------- cancellation
class TestCooperativeCancellation:
    def test_deadline_expires_mid_scan(self, polystore):
        bd, postgres, _ = polystore
        postgres._batch_executor._batch_rows = 64
        postgres.execute(
            "CREATE TABLE big (id INTEGER PRIMARY KEY, v INTEGER)"
        )
        postgres.execute(
            "INSERT INTO big VALUES "
            + ", ".join(f"({i}, {i % 7})" for i in range(4000))
        )
        ticking = TickingClock()
        runtime = fast_runtime(
            bd,
            resilience=EngineResilience(
                retry=RetryPolicy(max_attempts=1), clock=ticking.now,
                sleep=lambda s: None,
            ),
        )
        try:
            with pytest.raises(DeadlineExceededError):
                runtime.execute(
                    "RELATIONAL(SELECT sum(v) AS s FROM big)",
                    use_cache=False, deadline_s=30.0,
                )
            # The scan polls the token once per 64-row batch; the first poll
            # past the deadline raises, so the query died within one batch
            # of its budget — far short of the ~62 batches a full scan needs.
            assert ticking.t < 45.0
        finally:
            runtime.shutdown()

    def test_client_abandon_cancels_in_flight_query(self, polystore):
        bd, postgres, _ = polystore
        runtime = fast_runtime(bd)
        injector = FaultInjector().add_latency("execute", 0.3)
        injector.install(postgres)
        try:
            future = runtime.submit(
                "RELATIONAL(SELECT count(*) AS n FROM patients)",
                use_cache=False,
            )
            future.cancellation_token.cancel("client went away")
            with pytest.raises(QueryCancelledError):
                future.result(timeout=10)
        finally:
            injector.uninstall()
            runtime.shutdown()

    def test_deadline_mid_cast_discards_shadow_and_catalog_state(
        self, polystore
    ):
        bd, postgres, mysql = polystore
        postgres.execute("CREATE TABLE wide (id INTEGER PRIMARY KEY)")
        postgres.execute(
            "INSERT INTO wide VALUES " + ", ".join(f"({i})" for i in range(40))
        )
        ticking = TickingClock()
        token = CancellationToken(deadline=10.0, clock=ticking.now)
        with cancel_scope(token):
            with pytest.raises(DeadlineExceededError):
                bd.migrator.cast("wide", "mysql", chunk_size=1)
        # The cancelled import rolled back: no shadow, no half-imported
        # object, no replica registered.
        assert_no_shadows(postgres, mysql)
        assert not mysql.has_object("wide")
        assert bd.catalog.replicas("wide") == []
        assert bd.catalog.locate("wide").engine_name == "postgres"
        # The same CAST succeeds once the pressure is off.
        record = bd.migrator.cast("wide", "mysql", chunk_size=1)
        assert record.rows == 40

    def test_cancellation_mid_spill_join_closes_every_run(self, monkeypatch):
        engine = RelationalEngine("pg")
        engine.join_memory_budget = 256
        engine._batch_executor._batch_rows = 64
        engine.execute(
            "CREATE TABLE events (id INTEGER PRIMARY KEY, user_id INTEGER)"
        )
        engine.execute("CREATE TABLE users (uid INTEGER PRIMARY KEY, name TEXT)")
        rng = random.Random(7)
        engine.execute(
            "INSERT INTO events VALUES "
            + ", ".join(f"({i}, {rng.randrange(80)})" for i in range(2000))
        )
        engine.execute(
            "INSERT INTO users VALUES "
            + ", ".join(f"({u}, 'user{u}')" for u in range(80))
        )
        created: list[morsel.SpillRun] = []
        original_init = morsel.SpillRun.__init__

        def tracking_init(self):
            original_init(self)
            created.append(self)

        monkeypatch.setattr(morsel.SpillRun, "__init__", tracking_init)
        ticking = TickingClock()
        token = CancellationToken(deadline=20.0, clock=ticking.now)
        with cancel_scope(token):
            with pytest.raises(DeadlineExceededError):
                engine.execute(
                    "SELECT count(*) AS n FROM events JOIN users ON user_id = uid"
                )
        assert created, "join never reached the spill path"
        leaked = [run for run in created if not run._file.closed]
        assert leaked == [], f"{len(leaked)} spill temp files left open"


# --------------------------------------------------------- retry budgets
class TestRetryBudgets:
    def test_bucket_spend_refund_and_refill(self):
        budget = RetryBudget(capacity=2.0, refill_per_success=1.0)
        assert budget.try_spend() and budget.try_spend()
        assert not budget.try_spend()
        assert budget.denied_total == 1
        budget.refund()
        assert budget.try_spend()
        budget.record_success()
        assert budget.try_spend()

    def test_flapping_engine_throttles_retries_healthy_engine_unaffected(self):
        resilience = EngineResilience(
            retry=RetryPolicy(max_attempts=3, base_backoff_s=0.0, jitter=0.0),
            failure_threshold=100, sleep=lambda s: None,
            retry_budget_capacity=1.0, retry_budget_refill=0.0,
        )
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            raise TransientEngineError("flap")

        # First run spends the only token on its first retry, then is denied.
        with pytest.raises(TransientEngineError):
            resilience.run(["flappy"], flaky)
        assert calls["n"] == 2
        assert resilience.budget("flappy").denied_total == 1
        # Budget drained: later failures shed their retries entirely.
        with pytest.raises(TransientEngineError):
            resilience.run(["flappy"], flaky)
        assert calls["n"] == 3
        # A healthy engine keeps its full, untouched budget.
        assert resilience.run(["steady"], lambda: "ok") == "ok"
        assert resilience.budget("steady").tokens == 1.0
        assert resilience.budget("steady").denied_total == 0

    def test_successes_refill_the_budget(self):
        resilience = EngineResilience(
            retry=RetryPolicy(max_attempts=2, base_backoff_s=0.0, jitter=0.0),
            failure_threshold=100, sleep=lambda s: None,
            retry_budget_capacity=1.0, retry_budget_refill=1.0,
        )
        attempts = {"n": 0}

        def flaky_then_ok():
            attempts["n"] += 1
            if attempts["n"] % 2 == 1:
                raise TransientEngineError("flap")
            return "ok"

        # fail → retry (spends the token) → success refills it; so the
        # pattern stays retryable indefinitely.
        for _ in range(3):
            assert resilience.run(["wobbly"], flaky_then_ok) == "ok"
        assert resilience.budget("wobbly").denied_total == 0


# ----------------------------------------------- fault injector extensions
class TestFaultInjectorExtensions:
    def test_timed_outage_expires_on_the_injected_clock(self, polystore):
        _, postgres, _ = polystore
        clock = FakeClock()
        injector = FaultInjector(clock=clock.now)
        injector.outage(duration_s=5.0).install(postgres)
        try:
            with pytest.raises(EngineUnavailableError):
                postgres.export_relation("patients")
            clock.advance(4.9)
            with pytest.raises(EngineUnavailableError):
                postgres.export_relation("patients")
            clock.advance(0.2)
            assert len(postgres.export_relation("patients")) == 4
        finally:
            injector.uninstall()

    def test_indefinite_outage_needs_explicit_restore(self, polystore):
        _, postgres, _ = polystore
        clock = FakeClock()
        injector = FaultInjector(clock=clock.now)
        injector.outage().install(postgres)
        try:
            clock.advance(1e9)
            with pytest.raises(EngineUnavailableError):
                postgres.export_relation("patients")
            injector.restore()
            assert len(postgres.export_relation("patients")) == 4
        finally:
            injector.uninstall()

    def test_fail_rename_aborts_the_cast_commit_cleanly(self, polystore):
        bd, postgres, mysql = polystore
        injector = FaultInjector().fail_rename()
        injector.install(mysql)
        try:
            with pytest.raises(InjectedFault):
                bd.migrator.cast("patients", "mysql")
            assert_no_shadows(postgres, mysql)
            assert not mysql.has_object("patients")
            assert bd.catalog.replicas("patients") == []
            # The fault fired once; the retried cast commits.
            record = bd.migrator.cast("patients", "mysql")
            assert record.rows == 4
            assert [loc.engine_name for loc in bd.catalog.replicas("patients")] \
                == ["mysql"]
        finally:
            injector.uninstall()


# ------------------------------------------------ multi-engine stale serve
class TestMultiEngineStaleServe:
    def test_any_required_open_breaker_qualifies_and_counts_per_engine(
        self, polystore
    ):
        bd, postgres, mysql = polystore
        mysql.execute("CREATE TABLE visits (vid INTEGER PRIMARY KEY, pid INTEGER)")
        mysql.execute("INSERT INTO visits VALUES (10, 1), (11, 2)")
        runtime = fast_runtime(bd, serve_stale_on_open=True)
        injector = FaultInjector()
        query = (
            "RELATIONAL(SELECT count(*) AS n FROM patients "
            "JOIN visits ON id = pid)"
        )
        try:
            fresh = runtime.execute(query)
            assert fresh.rows[0]["n"] == 2 and fresh.stale is False
            # Trip only mysql's breaker, then invalidate the cache entry
            # with a write on the still-healthy engine.
            injector.outage()
            injector.install(mysql)
            with pytest.raises(EngineUnavailableError):
                runtime.execute(
                    "RELATIONAL(SELECT count(*) AS n FROM visits)",
                    use_cache=False,
                )
            runtime.execute("RELATIONAL(INSERT INTO patients VALUES (5, 30))")
            # The two-engine query hits mysql's open breaker: the last-known
            # -good result is served, flagged, and attributed to mysql.
            served = runtime.execute(query)
            assert served.stale is True
            assert served.rows[0]["n"] == 2
            snapshot = runtime.metrics.snapshot()
            assert snapshot["stale_served"] == 1
            assert snapshot["stale_served_by_engine"] == {"mysql": 1}
        finally:
            injector.uninstall()
            runtime.shutdown()
