"""Durable writes: the intent journal, write failover, and crash recovery.

The contract under test:

* every write-path protocol (DML dispatch, CAST, primary election) journals
  a begin record before acting and a terminal record after, with per-step
  marks in between, so a crash at *any* journal boundary leaves a replayable
  record;
* a "restarted" runtime (a new :class:`PolystoreRuntime` over the same
  engines and the same journal) replays the journal: acknowledged writes
  are never lost, unacknowledged ones are never half-visible — after
  recovery the polystore reads byte-identically to either the pre-write or
  the post-write state, with no orphaned shadows or half-elected primaries;
* a write whose primary is down succeeds by *promoting* a fresh healthy
  replica (a journaled election under a ``failover.write`` span), and
  recovery later repairs the demoted copy (anti-entropy CAST) or discards
  it if its engine is still unreachable;
* failover re-dispatches are budgeted out of the query's remaining
  deadline (``RetryPolicy.attempts_within``), so failing over can never
  sleep past the deadline;
* client cancellation during a write failover unwinds cleanly: no dangling
  intents, no half-promotions, no shadow objects.
"""

from __future__ import annotations

import json

import pytest

from repro.common.cancellation import current_token
from repro.common.errors import (
    QueryCancelledError,
    SimulatedCrashError,
    TransientEngineError,
)
from repro.core.bigdawg import BigDawg
from repro.engines.relational import RelationalEngine
from repro.runtime import (
    CRASH_POINTS,
    EngineResilience,
    FaultInjector,
    FileJournalBackend,
    MemoryJournalBackend,
    PolystoreRuntime,
    RetryPolicy,
    WriteIntentJournal,
)


class FakeClock:
    """A manually advanced clock (reads do not move time)."""

    def __init__(self) -> None:
        self.t = 0.0

    def now(self) -> float:
        return self.t

    def advance(self, seconds: float) -> None:
        self.t += seconds


@pytest.fixture()
def polystore():
    """patients on postgres, with a fresh replica on mysql."""
    bd = BigDawg()
    postgres = RelationalEngine("postgres")
    mysql = RelationalEngine("mysql")
    bd.add_engine(postgres, islands=["relational"])
    bd.add_engine(mysql, islands=["relational"])
    postgres.execute("CREATE TABLE patients (id INTEGER PRIMARY KEY, age INTEGER)")
    postgres.execute("INSERT INTO patients VALUES (1, 64), (2, 70), (3, 41)")
    bd.migrator.cast("patients", "mysql")
    return bd, postgres, mysql


def fast_runtime(bd: BigDawg, **overrides) -> PolystoreRuntime:
    options = dict(
        workers=2,
        resilience=EngineResilience(
            retry=RetryPolicy(max_attempts=1), failure_threshold=1,
            cooldown_s=60.0,
        ),
    )
    options.update(overrides)
    return PolystoreRuntime(bd, **options)


def restart(bd: BigDawg, journal: WriteIntentJournal, **overrides) -> PolystoreRuntime:
    """Model a process restart: a fresh runtime over the same engines+journal.

    The in-process engines and catalog survive (they model autonomous
    engines with their own durability; it is the *middleware* that died
    mid-protocol), while breakers, pools and caches are new — and
    ``recover_on_start`` replays the journal before the runtime serves.
    """
    return fast_runtime(bd, journal=journal, **overrides)


def rows_of(engine, name: str = "patients") -> list[tuple]:
    return sorted(row.values for row in engine.export_relation(name).rows)


def assert_no_shadows(*engines) -> None:
    for engine in engines:
        shadows = [n for n in engine.list_objects() if "__cast_shadow__" in n]
        assert shadows == [], f"leftover shadows on {engine.name!r}: {shadows}"


def assert_recovered_clean(runtime: PolystoreRuntime, *engines) -> None:
    """The universal post-recovery invariants: nothing dangling anywhere."""
    assert runtime.journal.open_intents() == []
    assert_no_shadows(*engines)
    assert runtime.last_recovery is not None


# ------------------------------------------------------------- journal units
class TestWriteIntentJournal:
    def test_begin_mark_commit_roundtrip(self):
        journal = WriteIntentJournal()
        intent = journal.begin("dml", query="INSERT ...", engines=["postgres"])
        assert intent.token  # idempotency token assigned at begin
        intent.mark("applied", rows=1)
        intent.commit()
        (state,) = journal.replay()
        assert state.kind == "dml"
        assert state.payload["engines"] == ["postgres"]
        assert state.steps["applied"] == {"rows": 1}
        assert state.committed and not state.aborted and state.complete
        assert journal.open_intents() == []

    def test_open_intents_are_the_unterminated_ones(self):
        journal = WriteIntentJournal()
        done = journal.begin("dml")
        done.commit()
        failed = journal.begin("cast")
        failed.abort(error="Boom")
        hanging = journal.begin("promotion")
        hanging.mark("catalog")
        (open_state,) = journal.open_intents()
        assert open_state.intent_id == hanging.intent_id
        assert "catalog" in open_state.steps
        described = journal.describe()
        assert described["backend"] == "memory"
        assert described["intents_written"] == 3
        assert described["intents_committed"] == 1
        assert described["intents_aborted"] == 1
        assert described["open_intents"] == 1
        assert failed.intent_id != done.intent_id

    def test_file_backend_survives_reopen_and_resumes_sequence(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        first = WriteIntentJournal(FileJournalBackend(path))
        intent = first.begin("dml", query="UPDATE ...")
        intent.mark("applied")
        first.backend.close()
        # The "next process" opens the same file: same intents, higher seqs.
        second = WriteIntentJournal(FileJournalBackend(path))
        assert second.has_intents()
        (state,) = second.open_intents()
        assert state.intent_id == intent.intent_id
        assert state.token == intent.token
        later = second.begin("dml")
        assert later.intent_id > intent.intent_id
        assert second.describe()["backend"] == "file"
        second.backend.close()

    def test_file_backend_tolerates_torn_trailing_record(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = WriteIntentJournal(FileJournalBackend(path))
        journal.begin("dml", query="INSERT ...").commit()
        journal.backend.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 99, "intent": "i000')  # crash mid-append
        reopened = WriteIntentJournal(FileJournalBackend(path))
        (state,) = reopened.replay()
        assert state.committed  # the torn line is dropped, not fatal
        reopened.backend.close()

    def test_file_records_are_json_lines(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = WriteIntentJournal(FileJournalBackend(path))
        journal.begin("cast", object="patients").mark("imported")
        journal.backend.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [record["phase"] for record in lines] == ["begin", "apply"]
        assert lines[0]["token"].endswith(".cast")


# --------------------------------------------------------- DML crash sweep
class TestDMLCrashSweep:
    @pytest.mark.parametrize("point", CRASH_POINTS["dml"])
    def test_crash_at_every_dml_boundary_loses_nothing_visible(
        self, polystore, point
    ):
        bd, postgres, mysql = polystore
        before = rows_of(postgres)
        runtime = fast_runtime(bd)
        injector = FaultInjector().crash_at(point).attach_journal(runtime.journal)
        try:
            with pytest.raises(SimulatedCrashError):
                runtime.execute("INSERT INTO patients VALUES (9, 33)")
        finally:
            injector.uninstall()
            runtime.shutdown()
        assert injector.injected[f"crash:{point}"] == 1

        revived = restart(bd, runtime.journal)
        try:
            assert_recovered_clean(revived, postgres, mysql)
            (dml,) = [s for s in revived.journal.replay() if s.kind == "dml"]
            after = rows_of(postgres)
            if dml.committed:
                # The write applied before the crash: recovery rolled it
                # forward, and it must be visible exactly once.
                assert after == sorted(before + [(9, 33)])
            else:
                # Never dispatched: rolled back, byte-identical to before.
                assert dml.aborted
                assert after == before
            # The answer a client reads now is a clean pre- or post- state.
            result = revived.execute("SELECT * FROM patients ORDER BY id")
            assert sorted(r.values for r in result.rows) == after
        finally:
            revived.shutdown()

    def test_applied_but_uncommitted_write_rolls_forward_by_token(self, polystore):
        bd, postgres, mysql = polystore
        runtime = fast_runtime(bd)
        injector = FaultInjector().crash_at("dml.dispatched")
        injector.attach_journal(runtime.journal)
        try:
            with pytest.raises(SimulatedCrashError):
                runtime.execute("INSERT INTO patients VALUES (9, 33)")
        finally:
            injector.uninstall()
            runtime.shutdown()
        (state,) = runtime.journal.open_intents()
        # The engine remembers the intent's idempotency token...
        assert postgres.has_write_token(state.token)
        revived = restart(bd, runtime.journal)
        try:
            # ...which is what recovery keys the roll-forward on: the intent
            # has no "applied" mark, only the engine-side token.
            assert revived.last_recovery.rolled_forward == 1
            assert (9, 33) in rows_of(postgres)
        finally:
            revived.shutdown()

    def test_crash_recovery_with_file_journal_across_instances(
        self, polystore, tmp_path
    ):
        bd, postgres, mysql = polystore
        path = tmp_path / "wal.jsonl"
        journal = WriteIntentJournal(FileJournalBackend(path))
        runtime = fast_runtime(bd, journal=journal)
        injector = FaultInjector().crash_at("dml.applied").attach_journal(journal)
        try:
            with pytest.raises(SimulatedCrashError):
                runtime.execute("INSERT INTO patients VALUES (9, 33)")
        finally:
            injector.uninstall()
            runtime.shutdown()
            journal.backend.close()
        # The restarted process reads the journal *from disk* — nothing is
        # shared with the dead runtime but the file.
        revived = restart(bd, WriteIntentJournal(FileJournalBackend(path)))
        try:
            assert revived.last_recovery.rolled_forward == 1
            assert (9, 33) in rows_of(postgres)
            assert revived.journal.open_intents() == []
        finally:
            revived.shutdown()
            revived.journal.backend.close()


# -------------------------------------------------------- CAST crash sweep
def _cast_sweep_params():
    for drop_source in (False, True):
        for point in CRASH_POINTS["cast"]:
            if point == "cast.source_dropped" and not drop_source:
                continue  # that boundary only exists on drop_source casts
            yield pytest.param(point, drop_source, id=f"{point}-drop{drop_source}")


class TestCastCrashSweep:
    @pytest.mark.parametrize("point,drop_source", _cast_sweep_params())
    def test_crash_at_every_cast_boundary_is_atomic(
        self, polystore, point, drop_source
    ):
        bd, postgres, mysql = polystore
        bd.catalog.drop_replica("patients", "mysql")
        mysql.drop_object("patients")
        before = rows_of(postgres)
        runtime = fast_runtime(bd)  # injects the journal into the migrator
        injector = FaultInjector().crash_at(point).attach_journal(runtime.journal)
        try:
            with pytest.raises(SimulatedCrashError):
                bd.migrator.cast("patients", "mysql", drop_source=drop_source)
        finally:
            injector.uninstall()
            runtime.shutdown()

        revived = restart(bd, runtime.journal)
        try:
            assert_recovered_clean(revived, postgres, mysql)
            (cast,) = [s for s in revived.journal.replay() if s.kind == "cast"]
            if cast.aborted:
                # Rolled back: the polystore reads as if the CAST never ran.
                assert bd.catalog.locate("patients").engine_name == "postgres"
                assert bd.catalog.replicas("patients") == []
                assert not mysql.has_object("patients")
                assert rows_of(postgres) == before
            else:
                # Rolled forward: the CAST completed, catalog swap included.
                assert cast.committed
                assert rows_of(mysql) == before
                if drop_source:
                    assert bd.catalog.locate("patients").engine_name == "mysql"
                    assert not postgres.has_object("patients")
                else:
                    assert bd.catalog.locate("patients").engine_name == "postgres"
                    replicas = bd.catalog.replicas("patients")
                    assert [loc.engine_name for loc in replicas] == ["mysql"]
                    assert rows_of(postgres) == before
        finally:
            revived.shutdown()


# --------------------------------------------------- promotion crash sweep
class TestPromotionCrashSweep:
    @pytest.mark.parametrize("point", CRASH_POINTS["promotion"])
    def test_crash_mid_election_never_half_promotes(self, polystore, point):
        bd, postgres, mysql = polystore
        before = rows_of(postgres)
        runtime = fast_runtime(bd)
        injector = FaultInjector().outage().crash_at(point)
        injector.attach_journal(runtime.journal)
        injector.install(postgres)
        try:
            with pytest.raises(SimulatedCrashError):
                runtime.execute("INSERT INTO patients VALUES (9, 33)")
        finally:
            injector.uninstall()  # engine back up, crash hook detached
            runtime.shutdown()

        revived = restart(bd, runtime.journal)
        try:
            assert_recovered_clean(revived, postgres, mysql)
            # The client never got an acknowledgement, and the re-dispatch
            # never ran: the row must not exist on any copy.
            assert rows_of(postgres) == before
            assert rows_of(mysql) == before
            (promotion,) = [
                s for s in revived.journal.replay() if s.kind == "promotion"
            ]
            primary = bd.catalog.locate("patients").engine_name
            if promotion.committed:
                # A committed election stands; the demoted copy missed no
                # writes, so recovery resolves it as still-fresh.
                assert point == "promotion.committed"
                assert primary == "mysql"
                assert promotion.steps["resolved"]["outcome"] == "fresh"
                fresh = bd.catalog.fresh_locations("patients")
                assert {loc.engine_name for loc in fresh} == {"postgres", "mysql"}
            else:
                # Un-elected (or never elected): postgres is primary again
                # and the mysql replica is still fresh and promotable.
                assert primary == "postgres"
                fresh = bd.catalog.fresh_locations("patients")
                assert {loc.engine_name for loc in fresh} == {"postgres", "mysql"}
            # Either way the poststate serves reads consistently.
            result = revived.execute("SELECT * FROM patients ORDER BY id")
            assert sorted(r.values for r in result.rows) == before
        finally:
            revived.shutdown()


# ------------------------------------------------------------ write failover
class TestWriteFailover:
    def test_write_to_downed_primary_elects_replica_and_succeeds(self, polystore):
        bd, postgres, mysql = polystore
        runtime = fast_runtime(bd)
        injector = FaultInjector().outage()
        injector.install(postgres)
        try:
            _, tracer = runtime.trace("INSERT INTO patients VALUES (9, 33)")
        finally:
            injector.uninstall()
        try:
            spans = {span.name: span for span in tracer.spans()}
            assert "failover.write" in spans
            assert spans["failover.write"].attrs["from_engines"] == "postgres"
            assert spans["failover.write"].attrs["to_engines"] == "mysql"
            # The election moved the primary; the write landed there.
            assert bd.catalog.locate("patients").engine_name == "mysql"
            assert (9, 33) in rows_of(mysql)
            assert (9, 33) not in rows_of(postgres)
            # Demoted primary is now a *stale* replica awaiting repair.
            (demoted,) = bd.catalog.replicas("patients")
            assert demoted.engine_name == "postgres"
            assert demoted.version != bd.catalog.content_version("patients")
            snapshot = runtime.metrics.snapshot()
            assert snapshot["writes_failed_over"] == 1
            assert snapshot["failover_total"] == 1
            assert runtime.journal.open_intents() == []
        finally:
            runtime.shutdown()

    def test_recovery_repairs_demoted_primary_when_engine_returns(self, polystore):
        bd, postgres, mysql = polystore
        runtime = fast_runtime(bd)
        injector = FaultInjector().outage()
        injector.install(postgres)
        try:
            runtime.execute("INSERT INTO patients VALUES (9, 33)")
        finally:
            injector.uninstall()  # postgres comes back, stale
            runtime.shutdown()
        assert rows_of(postgres) != rows_of(mysql)

        revived = restart(bd, runtime.journal)
        try:
            # Startup recovery saw the committed election and repaired the
            # demoted copy with an anti-entropy CAST from the new primary.
            assert revived.last_recovery.repaired == 1
            assert rows_of(postgres) == rows_of(mysql)
            (repaired,) = bd.catalog.replicas("patients")
            assert repaired.engine_name == "postgres"
            assert repaired.version == bd.catalog.content_version("patients")
            assert revived.metrics.snapshot()["recovery_rollbacks"] == 0
        finally:
            revived.shutdown()

    def test_recovery_discards_demoted_primary_still_down(self, polystore):
        bd, postgres, mysql = polystore
        runtime = fast_runtime(bd)
        injector = FaultInjector().outage()
        injector.install(postgres)
        try:
            runtime.execute("INSERT INTO patients VALUES (9, 33)")
            runtime.shutdown()
            # postgres is STILL down through the restart: the repair CAST
            # fails, so recovery forgets the unreachable stale copy.
            revived = restart(bd, runtime.journal)
        finally:
            injector.uninstall()
        try:
            assert revived.last_recovery.discarded == 1
            assert bd.catalog.locate("patients").engine_name == "mysql"
            assert bd.catalog.replicas("patients") == []
        finally:
            revived.shutdown()

    def test_write_without_fresh_replica_still_fails(self, polystore):
        bd, postgres, mysql = polystore
        bd.catalog.drop_replica("patients", "mysql")
        runtime = fast_runtime(bd)
        injector = FaultInjector().outage()
        injector.install(postgres)
        try:
            with pytest.raises(TransientEngineError):
                runtime.execute("INSERT INTO patients VALUES (9, 33)")
            # Nothing to elect: no counters moved, no intents dangling.
            assert runtime.metrics.snapshot()["writes_failed_over"] == 0
            assert runtime.journal.open_intents() == []
            assert bd.catalog.locate("patients").engine_name == "postgres"
        finally:
            injector.uninstall()
            runtime.shutdown()


# --------------------------------------------------- deadline-aware failover
class TestFailoverDeadlineBudget:
    def test_attempts_within_counts_worst_case_backoff(self):
        policy = RetryPolicy(
            max_attempts=5, base_backoff_s=10.0, multiplier=2.0,
            max_backoff_s=100.0, jitter=0.0,
        )
        assert policy.attempts_within(5.0) == 1    # no backoff fits
        assert policy.attempts_within(10.0) == 2   # one 10s backoff
        assert policy.attempts_within(25.0) == 2   # 10+20 > 25
        assert policy.attempts_within(30.0) == 3
        assert policy.attempts_within(10_000.0) == 5  # policy ceiling holds
        jittered = RetryPolicy(
            max_attempts=5, base_backoff_s=10.0, multiplier=2.0,
            max_backoff_s=100.0, jitter=0.5,
        )
        # Worst-case jitter stretches the first backoff to 15s.
        assert jittered.attempts_within(10.0) == 1
        assert jittered.attempts_within(15.0) == 2

    def _deadline_runtime(self, bd):
        clock = FakeClock()
        resilience = EngineResilience(
            retry=RetryPolicy(
                max_attempts=3, base_backoff_s=10.0, multiplier=2.0,
                max_backoff_s=100.0, jitter=0.0,
            ),
            failure_threshold=2, cooldown_s=1000.0,
            clock=clock.now, sleep=clock.advance,
        )
        return clock, fast_runtime(bd, resilience=resilience)

    # Primary-path timeline shared by both tests: the postgres outage fails
    # attempt 1 at t=0 (backoff 10s), fails attempt 2 at t=10 — the breaker
    # opens — and sleeps backoff 20s, so attempt 3 hits the open breaker at
    # t=30 and the failover path takes over with (deadline - 30)s left.

    def test_failover_redispatch_fits_inside_remaining_deadline(self, polystore):
        bd, postgres, mysql = polystore
        clock, runtime = self._deadline_runtime(bd)
        outage = FaultInjector().outage()
        outage.install(postgres)
        flaky = FaultInjector().fail_nth("execute", 1)
        flaky.install(mysql)
        try:
            # Budget 45s: the primary burns 30s, and the remaining 15s buys
            # the re-dispatch two attempts (one 10s backoff) — enough to
            # absorb mysql's first flake and land inside the deadline.
            runtime.execute("INSERT INTO patients VALUES (9, 33)", deadline_s=45.0)
            assert (9, 33) in rows_of(mysql)
            assert clock.t <= 45.0
            assert flaky.calls["execute"] == 2
        finally:
            outage.uninstall()
            flaky.uninstall()
            runtime.shutdown()

    def test_failover_redispatch_never_sleeps_past_the_deadline(self, polystore):
        bd, postgres, mysql = polystore
        clock, runtime = self._deadline_runtime(bd)
        outage = FaultInjector().outage()
        outage.install(postgres)
        flaky = FaultInjector().fail_nth("execute", 1)
        flaky.install(mysql)
        try:
            # Budget 35s: after the primary burns 30s only 5s remain — not
            # enough for one 10s backoff, so the re-dispatch is capped at a
            # single attempt and surfaces mysql's flake *immediately*
            # instead of sleeping past the deadline.
            with pytest.raises(TransientEngineError):
                runtime.execute(
                    "INSERT INTO patients VALUES (9, 33)", deadline_s=35.0
                )
            assert clock.t == 30.0  # no post-failover backoff was slept
            assert flaky.calls["execute"] == 1
            assert runtime.journal.open_intents() == []
        finally:
            outage.uninstall()
            flaky.uninstall()
            runtime.shutdown()


# --------------------------------------------- cancellation during failover
class TestCancellationDuringWriteFailover:
    def test_cancel_mid_election_leaves_no_dangling_state(self, polystore):
        bd, postgres, mysql = polystore
        runtime = fast_runtime(bd)
        original = runtime._elect_write_primaries

        def cancel_then_elect(text, broken, description):
            # The client gives up exactly as the election starts — the
            # nastiest moment: the breaker is open, the promotion has not
            # yet been journaled.
            token = current_token()
            assert token is not None
            token.cancel("client abandoned the write")
            return original(text, broken, description)

        runtime._elect_write_primaries = cancel_then_elect
        injector = FaultInjector().outage()
        injector.install(postgres)
        try:
            future = runtime.submit("INSERT INTO patients VALUES (9, 33)")
            with pytest.raises(QueryCancelledError):
                future.result()
        finally:
            injector.uninstall()
            runtime.shutdown()
        # No half-promotion, no dangling intents, no shadows, no write.
        assert runtime.journal.open_intents() == []
        assert all(
            s.kind != "promotion" for s in runtime.journal.replay()
        ), "a cancelled failover must not have begun an election"
        assert bd.catalog.locate("patients").engine_name == "postgres"
        assert_no_shadows(postgres, mysql)
        assert (9, 33) not in rows_of(mysql)
        assert (9, 33) not in rows_of(postgres)
        # The mysql replica stayed fresh: nothing was stale-marked by the
        # failed, never-applied write.
        fresh = bd.catalog.fresh_locations("patients")
        assert {loc.engine_name for loc in fresh} == {"postgres", "mysql"}


# ------------------------------------------------------- metrics & describe
class TestDurabilitySurface:
    def test_journal_and_recovery_metrics_are_exposed(self, polystore):
        bd, postgres, mysql = polystore
        runtime = fast_runtime(bd)
        try:
            runtime.execute("INSERT INTO patients VALUES (9, 33)")
            snapshot = runtime.metrics.snapshot()
            assert snapshot["intents_written"] == 1
            assert snapshot["journal_open_intents"] == 0
            assert snapshot["writes_failed_over"] == 0
            assert snapshot["intents_replayed"] == 0
            assert snapshot["recovery_rollbacks"] == 0
            described = runtime.describe()
            assert described["journal"]["backend"] == "memory"
            assert described["journal"]["intents_committed"] == 1
            assert described["recovery"] is None
        finally:
            runtime.shutdown()

    def test_recover_surfaces_report_in_describe_and_counters(self, polystore):
        bd, postgres, mysql = polystore
        runtime = fast_runtime(bd)
        injector = FaultInjector().crash_at("dml.begin")
        injector.attach_journal(runtime.journal)
        try:
            with pytest.raises(SimulatedCrashError):
                runtime.execute("INSERT INTO patients VALUES (9, 33)")
        finally:
            injector.uninstall()
            runtime.shutdown()
        revived = restart(bd, runtime.journal)
        try:
            snapshot = revived.metrics.snapshot()
            assert snapshot["intents_replayed"] == 1
            assert snapshot["recovery_rollbacks"] == 1
            recovery = revived.describe()["recovery"]
            assert recovery["rolled_back"] == 1
            assert recovery["details"]  # human-readable action log
        finally:
            revived.shutdown()

    def test_recovery_is_idempotent(self, polystore):
        bd, postgres, mysql = polystore
        runtime = fast_runtime(bd)
        injector = FaultInjector().crash_at("cast.imported")
        injector.attach_journal(runtime.journal)
        bd.catalog.drop_replica("patients", "mysql")
        mysql.drop_object("patients")
        try:
            with pytest.raises(SimulatedCrashError):
                bd.migrator.cast("patients", "mysql")
        finally:
            injector.uninstall()
        try:
            first = runtime.recover()
            assert first.rolled_back == 1
            # A second replay finds every intent terminal: nothing to do.
            second = runtime.recover()
            assert second.intents_replayed == 0
            assert second.as_dict()["repaired"] == 0
            assert runtime.journal.open_intents() == []
        finally:
            runtime.shutdown()

    def test_fresh_journal_makes_startup_recovery_a_noop(self, polystore):
        bd, postgres, mysql = polystore
        runtime = fast_runtime(bd, journal=WriteIntentJournal(MemoryJournalBackend()))
        try:
            assert runtime.last_recovery is None  # nothing replayed
        finally:
            runtime.shutdown()
