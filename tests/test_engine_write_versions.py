"""Interface-level audit: every engine's mutating ops advance write_version.

The runtime's result cache fingerprints engine state with ``write_version``;
a mutator that forgets to bump it leaves stale results servable forever.
This suite sweeps every engine kind through its interface-level mutators
(import/drop) and its native mutation entry points, asserting each one
invalidates the fingerprint — including the tiledb and tupleware prototypes,
whose native paths (create_array/write/load) previously skipped the bump.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.schema import Column, Relation, Schema
from repro.common.types import DataType
from repro.core.catalog import BigDawgCatalog
from repro.engines.array import ArrayEngine
from repro.engines.keyvalue import KeyValueEngine
from repro.engines.relational import RelationalEngine
from repro.engines.tiledb import TileDBArraySchema, TileDBEngine
from repro.engines.tupleware import TuplewareEngine
from repro.runtime import ResultCache


def sample_relation() -> Relation:
    schema = Schema([Column("d0", DataType.INTEGER), Column("value", DataType.FLOAT)])
    relation = Relation(schema)
    for i in range(4):
        relation.append([i, float(i)])
    return relation


ENGINE_FACTORIES = [
    pytest.param(lambda: RelationalEngine("pg"), id="relational"),
    pytest.param(lambda: ArrayEngine("scidb"), id="array"),
    pytest.param(lambda: KeyValueEngine("accumulo"), id="keyvalue"),
    pytest.param(lambda: TileDBEngine("tiledb"), id="tiledb"),
    pytest.param(lambda: TuplewareEngine("tupleware"), id="tupleware"),
]


class TestInterfaceMutatorsBump:
    """import_relation / import_chunks / drop_object must bump on every engine."""

    @pytest.mark.parametrize("factory", ENGINE_FACTORIES)
    def test_import_and_drop_bump(self, factory):
        engine = factory()
        relation = sample_relation()
        before = engine.write_version
        engine.import_relation("obj", relation)
        after_import = engine.write_version
        assert after_import > before, f"{engine.kind}: import_relation must bump"
        engine.drop_object("obj")
        assert engine.write_version > after_import, f"{engine.kind}: drop_object must bump"

    @pytest.mark.parametrize("factory", ENGINE_FACTORIES)
    def test_import_chunks_bumps(self, factory):
        engine = factory()
        relation = sample_relation()
        before = engine.write_version
        engine.import_chunks("obj", relation.schema, [relation])
        assert engine.write_version > before, f"{engine.kind}: import_chunks must bump"


class TestNativeMutatorsBump:
    """Engine-native mutation entry points must bump too."""

    def test_tiledb_create_array_and_writes_bump(self):
        engine = TileDBEngine()
        before = engine.write_version
        engine.create_array(TileDBArraySchema("m", ((0, 9), (0, 9)), (5, 5)))
        after_create = engine.write_version
        assert after_create > before
        engine.write("m", (1, 1), 4.0)
        after_write = engine.write_version
        assert after_write > after_create
        engine.write_block("m", (0, 0), np.ones((2, 2)))
        assert engine.write_version > after_write

    def test_tupleware_load_bumps(self):
        engine = TuplewareEngine()
        before = engine.write_version
        engine.load("d", [1.0, 2.0, 3.0])
        assert engine.write_version > before
        engine.load("d", [4.0], replace=True)
        assert engine.write_version > before + 1

    def test_relational_ddl_dml_bump(self):
        engine = RelationalEngine()
        before = engine.write_version
        engine.execute("CREATE TABLE t (id INTEGER)")
        engine.execute("INSERT INTO t VALUES (1)")
        engine.execute("UPDATE t SET id = 2")
        engine.execute("DELETE FROM t WHERE id = 2")
        assert engine.write_version >= before + 4


class TestResultCacheInvalidation:
    """The end-to-end property: native prototype-engine mutations evict cached results."""

    @pytest.mark.parametrize(
        "factory, mutate",
        [
            pytest.param(
                lambda: TileDBEngine("tiledb"),
                lambda e: (
                    e.create_array(TileDBArraySchema("fresh", ((0, 3),), (2,))),
                    e.write("fresh", (0,), 1.0),
                ),
                id="tiledb-native",
            ),
            pytest.param(
                lambda: TuplewareEngine("tupleware"),
                lambda e: e.load("fresh", [1.0, 2.0]),
                id="tupleware-native",
            ),
        ],
    )
    def test_native_mutation_invalidates_cached_result(self, factory, mutate):
        engine = factory()
        catalog = BigDawgCatalog()
        catalog.register_engine(engine)
        cache = ResultCache(catalog)
        result = sample_relation()
        assert cache.put("QUERY(x)", result, cache.fingerprint())
        assert cache.get("QUERY(x)") is not None
        mutate(engine)
        assert cache.get("QUERY(x)") is None, (
            f"{engine.kind}: a native mutation must invalidate cached results"
        )
        assert cache.invalidations >= 1
