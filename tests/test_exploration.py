"""Tests for the exploratory-analysis systems: SeeDB, Searchlight and ScalaR."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exploration import (
    ConstraintQuery,
    RangeConstraint,
    ScalarBrowser,
    SeeDB,
    Searchlight,
    TileKey,
    deviation_utility,
)


# -------------------------------------------------------------------- SeeDB
class TestDeviationUtility:
    def test_identical_distributions_have_zero_utility(self):
        series = {"a": 1.0, "b": 2.0}
        assert deviation_utility(series, dict(series)) == pytest.approx(0.0, abs=1e-9)

    def test_more_different_distributions_score_higher(self):
        reference = {"a": 1.0, "b": 1.0}
        slightly = {"a": 1.2, "b": 0.8}
        very = {"a": 5.0, "b": 0.1}
        assert deviation_utility(very, reference) > deviation_utility(slightly, reference)

    def test_disjoint_groups_handled(self):
        assert deviation_utility({"a": 1.0}, {"b": 1.0}) > 0
        assert deviation_utility({}, {}) == 0.0


class TestSeeDB:
    @pytest.fixture()
    def seedb(self, deployment) -> SeeDB:
        return SeeDB(
            deployment.bigdawg,
            "admissions",
            dimensions=["admission_type", "outcome"],
            measures=["stay_days", "severity"],
            sample_fraction=0.25,
            prune_keep=4,
        )

    def test_candidate_space_is_cartesian_product(self, seedb):
        assert len(seedb.candidates()) == 2 * 2 * 3

    def test_recommend_returns_ranked_views(self, seedb):
        report = seedb.recommend("severity > 0.6", k=3)
        assert len(report.views) == 3
        utilities = [view.utility for view in report.views]
        assert utilities == sorted(utilities, reverse=True)
        assert report.candidates_considered == 12
        assert report.candidates_pruned > 0
        chart = report.views[0].as_chart()
        assert set(chart) >= {"title", "groups", "target", "reference", "utility"}

    def test_pruning_keeps_topk_consistent_with_exhaustive(self, seedb):
        pruned = seedb.recommend("severity > 0.6", k=2, use_pruning=True)
        exhaustive = seedb.recommend("severity > 0.6", k=2, use_pruning=False)
        pruned_labels = {v.candidate.label for v in pruned.views}
        exhaustive_labels = {v.candidate.label for v in exhaustive.views}
        # Sampling may reorder close candidates, but the top view must survive pruning.
        assert exhaustive.views[0].candidate.label in pruned_labels or pruned_labels & exhaustive_labels

    def test_full_phase_does_fewer_evaluations_with_pruning(self, seedb):
        report = seedb.recommend("severity > 0.6", k=2, use_pruning=True)
        assert report.full_evaluations < report.candidates_considered


# --------------------------------------------------------------- Searchlight
class TestSearchlight:
    @pytest.fixture()
    def searchlight(self, deployment) -> Searchlight:
        return Searchlight(deployment.array.array("waveform_history"))

    def test_synopsis_and_exhaustive_agree(self, searchlight):
        query = ConstraintQuery("value", window_length=25, maximum=RangeConstraint(low=1.8))
        fast = searchlight.search(query, use_synopsis=True)
        slow = searchlight.search(query, use_synopsis=False)
        assert {(s.signal, s.start) for s in fast.solutions} == {
            (s.signal, s.start) for s in slow.solutions
        }
        assert fast.windows_validated <= slow.windows_validated
        assert fast.used_synopsis and not slow.used_synopsis

    def test_solutions_actually_satisfy_constraints(self, searchlight):
        query = ConstraintQuery(
            "value", window_length=30,
            avg=RangeConstraint(low=-0.2, high=0.6),
            maximum=RangeConstraint(high=3.0),
            minimum=RangeConstraint(low=-3.0),
        )
        report = searchlight.search(query)
        for solution in report.solutions:
            assert -0.2 <= solution.average <= 0.6
            assert solution.peak <= 3.0
            assert solution.trough >= -3.0

    def test_impossible_constraint_prunes_everything(self, searchlight):
        query = ConstraintQuery("value", window_length=25, minimum=RangeConstraint(low=100.0))
        report = searchlight.search(query, use_synopsis=True)
        assert report.solutions == []
        assert report.chunks_pruned > 0

    def test_anomalous_windows_found(self, deployment, searchlight):
        # The injected tachycardia bursts have amplitude > 1.8.
        query = ConstraintQuery("value", window_length=10, maximum=RangeConstraint(low=1.8))
        report = searchlight.search(query)
        anomalous_signals = {s.signal for s in report.solutions}
        expected = {w.signal_id for w in deployment.dataset.waveforms if w.has_anomaly}
        assert expected <= anomalous_signals

    def test_requires_two_dimensional_array(self, deployment):
        from repro.engines.array import linalg

        with pytest.raises(ValueError):
            Searchlight(linalg.from_matrix("flat", np.arange(5.0)))


# -------------------------------------------------------------------- ScalaR
class TestScalarBrowser:
    @pytest.fixture()
    def browser(self, deployment) -> ScalarBrowser:
        return ScalarBrowser(
            deployment.array.array("waveform_history"),
            tile_samples=16, base_block=2, max_levels=4, cache_capacity=64,
        )

    def test_resolution_levels_shrink(self, browser):
        fine_rows, fine_cols = browser.level_shape(0)
        coarse_rows, coarse_cols = browser.level_shape(3)
        assert fine_rows == coarse_rows
        assert coarse_cols < fine_cols

    def test_fetch_pan_zoom_produce_tiles(self, browser):
        tile = browser.fetch_tile(TileKey(level=2, row=0, col=0))
        assert tile.values.shape[0] == 1
        panned = browser.pan(tile.key, +1)
        assert panned.key.col == 1
        zoomed = browser.zoom_in(panned.key)
        assert zoomed.key.level == 1
        out = browser.zoom_out(zoomed.key)
        assert out.key.level == 2
        overview = browser.overview()
        assert overview.shape[0] == 3  # one row per signal

    def test_prefetching_improves_hit_rate(self, deployment):
        def drive(prefetch: bool) -> float:
            browser = ScalarBrowser(
                deployment.array.array("waveform_history"),
                tile_samples=16, base_block=2, max_levels=4, prefetch=prefetch,
            )
            tile = browser.fetch_tile(TileKey(level=1, row=0, col=0))
            for _ in range(10):
                tile = browser.pan(tile.key, +1)
            return browser.stats.hit_rate

        assert drive(True) > drive(False)

    def test_cache_eviction_respects_capacity(self, deployment):
        browser = ScalarBrowser(
            deployment.array.array("waveform_history"),
            tile_samples=8, base_block=2, max_levels=2, cache_capacity=4, prefetch=False,
        )
        for col in range(10):
            browser.fetch_tile(TileKey(level=0, row=0, col=col))
        assert len(browser._cache) <= 4

    def test_pan_clamps_at_edges(self, browser):
        tile = browser.fetch_tile(TileKey(level=3, row=0, col=0))
        panned = browser.pan(tile.key, -1)
        assert panned.key.col == 0
