"""End-to-end integration tests: the five demo interfaces against one polystore.

These tests exercise the whole stack the way the VLDB demo does (Section 3):
data partitioned across four engines, queried through islands, SCOPE/CAST,
exploration systems, complex analytics and real-time monitoring — all against
the same deployment fixture.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analytics import AnalyticsRunner
from repro.engines.streaming import AgingPolicy
from repro.exploration import ConstraintQuery, RangeConstraint, ScalarBrowser, SeeDB, Searchlight, TileKey
from repro.mimic import waveform_feed_tuples
from repro.monitoring import ReferenceProfile, WaveformMonitor


class TestCrossIslandIntegration:
    def test_relational_query_over_all_three_storage_models(self, deployment):
        bd = deployment.bigdawg
        # patients in postgres, waveform_history in scidb, notes in accumulo —
        # one relational query touches each through the island's shims.
        patients = bd.execute("RELATIONAL(SELECT count(*) AS n FROM patients)").rows[0]["n"]
        waves = bd.execute("RELATIONAL(SELECT count(*) AS n FROM waveform_history)").rows[0]["n"]
        notes = bd.execute("RELATIONAL(SELECT count(*) AS n FROM notes)").rows[0]["n"]
        assert patients == len(deployment.dataset.patients)
        assert waves == sum(len(w.values) for w in deployment.dataset.waveforms)
        assert notes == len(deployment.dataset.notes)

    def test_explicit_cast_query_moves_data_and_answers(self, deployment):
        bd = deployment.bigdawg
        result = bd.execute(
            "RELATIONAL(SELECT signal, count(*) AS n FROM CAST(waveform_history, relational) "
            "WHERE value > 1.8 GROUP BY signal ORDER BY signal)"
        )
        anomalous = {w.signal_id for w in deployment.dataset.waveforms if w.has_anomaly}
        assert {row["signal"] for row in result} <= {w.signal_id for w in deployment.dataset.waveforms}
        assert anomalous <= {row["signal"] for row in result}

    def test_text_and_sql_answers_are_consistent(self, deployment):
        bd = deployment.bigdawg
        flagged = [r["row"] for r in bd.execute('TEXT(SEARCH notes FOR "very sick" MIN 3)')]
        # Every flagged patient must actually have >= 3 such notes in the source data.
        from collections import Counter

        counts = Counter(
            f"patient_{note.patient_id:06d}"
            for note in deployment.dataset.notes
            if "very sick" in note.text
        )
        for row in flagged:
            assert counts[row] >= 3

    def test_monitor_learns_engine_strengths(self, deployment):
        bd = deployment.bigdawg
        array_engine = deployment.array

        def run_sql() -> object:
            return deployment.relational.execute("SELECT count(*) AS n FROM admissions")

        def run_afl() -> object:
            return array_engine.execute("aggregate(waveform_history, avg(value))")

        bd.monitor.probe("sql_analytics", "admissions", {"postgres": run_sql})
        bd.monitor.probe("complex_analytics", "waveform_history", {"scidb": run_afl})
        assert bd.monitor.dominant_query_class("admissions") == "sql_analytics"
        assert bd.monitor.best_engine("complex_analytics", "waveform_history")[0] == "scidb"


class TestFiveInterfaces:
    def test_browsing_interface(self, deployment):
        browser = ScalarBrowser(deployment.array.array("waveform_history"),
                                tile_samples=16, base_block=2, max_levels=3)
        overview = browser.overview()
        assert overview.shape[0] == len(deployment.dataset.waveforms)
        tile = browser.fetch_tile(TileKey(2, 0, 0))
        for _ in range(4):
            tile = browser.pan(tile.key, +1)
        assert browser.stats.requests == 5

    def test_exploratory_interface(self, deployment):
        seedb = SeeDB(deployment.bigdawg, "admissions",
                      dimensions=["admission_type", "outcome"],
                      measures=["stay_days", "severity"])
        report = seedb.recommend("outcome = 'deceased'", k=2)
        assert len(report.views) == 2
        assert all(view.utility >= 0 for view in report.views)

    def test_complex_analytics_interface(self, deployment):
        runner = AnalyticsRunner(deployment.bigdawg)
        frequency = runner.waveform_dominant_frequency("waveform_history", 0, 50.0)
        assert frequency > 0
        searchlight = Searchlight(deployment.array.array("waveform_history"))
        report = searchlight.search(
            ConstraintQuery("value", window_length=20, maximum=RangeConstraint(low=1.8))
        )
        assert report.windows_validated <= report.windows_considered

    def test_text_interface(self, deployment):
        hits = deployment.bigdawg.execute('TEXT(SEARCH notes FOR "chest pain")')
        for row in hits:
            text = deployment.keyvalue.table("notes").text_index.document(row["row"], row["qualifier"])
            assert "chest" in text and "pain" in text

    def test_realtime_interface_with_aging(self, deployment):
        waveform = deployment.dataset.waveforms[0]
        reference = ReferenceProfile.from_samples(
            waveform.values[: waveform.anomaly_start], waveform.sample_rate_hz
        )
        monitor = WaveformMonitor(reference, window_seconds=0.5)
        monitor.register(deployment.streaming, "waveform_feed")
        policy = AgingPolicy(
            deployment.streaming.stream("waveform_feed"), deployment.array, "aged_feed",
            max_series=4, max_samples=len(waveform.values),
        )
        deployment.streaming.add_aging_policy(policy)
        for timestamp, payload in waveform_feed_tuples(deployment.dataset, 0):
            deployment.streaming.append("waveform_feed", timestamp, payload)
        anomaly_time = waveform.anomaly_start / waveform.sample_rate_hz
        assert monitor.first_alert_after(anomaly_time) is not None
        # Hot + cold reconstruction equals the original signal.
        combined = policy.combined_series(0)
        np.testing.assert_allclose(combined, waveform.values)
        # And the aged data is queryable through the array island.
        aged = deployment.bigdawg.execute("ARRAY(aggregate(aged_feed, count(value)))")
        assert aged.rows[0]["count(value)"] == policy.tuples_aged
