"""Tests for the key-value engine: sorted store, iterators, tablets, text index."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ObjectNotFoundError
from repro.engines.keyvalue import (
    CountingCombiner,
    FamilyFilterIterator,
    InvertedTextIndex,
    KeyValueEngine,
    ScanRange,
    SortedKeyValueStore,
    SummingCombiner,
    ValueRegexIterator,
    VersioningIterator,
    tokenize,
)
from repro.engines.keyvalue.tablet import TabletManager


class TestSortedStore:
    def test_entries_kept_in_key_order(self):
        store = SortedKeyValueStore()
        store.put("row_c", "f", "q", 1)
        store.put("row_a", "f", "q", 2)
        store.put("row_b", "f", "q", 3)
        assert [e.key.row for e in store.scan()] == ["row_a", "row_b", "row_c"]

    def test_versions_sorted_newest_first(self):
        store = SortedKeyValueStore()
        store.put("r", "f", "q", "old")
        store.put("r", "f", "q", "new")
        values = [e.value for e in store.get_row("r")]
        assert values == ["new", "old"]

    def test_range_scan_and_family_filter(self):
        store = SortedKeyValueStore()
        for i in range(10):
            store.put(f"row_{i:02d}", "meta" if i % 2 else "data", "q", i)
        ranged = list(store.scan(ScanRange("row_03", "row_06")))
        assert [e.key.row for e in ranged] == ["row_03", "row_04", "row_05", "row_06"]
        filtered = list(store.scan(ScanRange(families=("meta",))))
        assert all(e.key.family == "meta" for e in filtered)

    def test_delete(self):
        store = SortedKeyValueStore()
        store.put("r", "a", "q1", 1)
        store.put("r", "b", "q2", 2)
        assert store.delete("r", family="a") == 1
        assert len(store) == 1
        assert store.delete("missing") == 0

    def test_row_count_and_split_point(self):
        store = SortedKeyValueStore()
        for i in range(9):
            store.put(f"row_{i}", "f", "q", i)
        assert store.row_count() == 9
        assert store.split_point() == "row_4"


class TestIterators:
    def make_store(self) -> SortedKeyValueStore:
        store = SortedKeyValueStore()
        for version in range(3):
            store.put("r1", "vitals", "hr", 60 + version)
        store.put("r1", "notes", "n1", "patient very sick")
        store.put("r2", "vitals", "hr", 90)
        return store

    def test_versioning_iterator_keeps_newest(self):
        store = self.make_store()
        entries = list(VersioningIterator(1).apply(store.scan()))
        hr_values = [e.value for e in entries if e.key.qualifier == "hr" and e.key.row == "r1"]
        assert hr_values == [62]

    def test_family_filter_and_regex(self):
        store = self.make_store()
        vitals = list(FamilyFilterIterator(["vitals"]).apply(store.scan()))
        assert all(e.key.family == "vitals" for e in vitals)
        sick = list(ValueRegexIterator("very sick").apply(store.scan()))
        assert len(sick) == 1

    def test_combiners(self):
        store = self.make_store()
        summed = list(SummingCombiner().apply(store.scan(ScanRange(families=("vitals",)))))
        r1 = next(e for e in summed if e.key.row == "r1")
        assert r1.value == 60 + 61 + 62
        counted = list(CountingCombiner(key_fn=lambda k: (k.row,)).apply(store.scan()))
        by_row = {e.key.row: e.value for e in counted}
        assert by_row["r1"] == 4 and by_row["r2"] == 1

    def test_iterator_stack_composes(self):
        store = self.make_store()
        table_engine = KeyValueEngine()
        table_engine.create_table("t")
        for e in store.scan():
            table_engine.put("t", e.key.row, e.key.family, e.key.qualifier, e.value)
        entries = table_engine.scan(
            "t", iterators=[FamilyFilterIterator(["vitals"]), VersioningIterator(1)]
        )
        assert len(entries) == 2  # one newest hr per row


class TestTextIndex:
    def make_index(self) -> InvertedTextIndex:
        index = InvertedTextIndex()
        index.add_document("p1", "n1", "patient very sick today")
        index.add_document("p1", "n2", "remains very sick overnight")
        index.add_document("p1", "n3", "very sick requiring pressors")
        index.add_document("p2", "n1", "recovering well tolerating diet")
        index.add_document("p3", "n1", "complains of chest pain")
        return index

    def test_tokenize_removes_stop_words(self):
        assert tokenize("The patient is very sick") == ["patient", "very", "sick"]

    def test_term_and_boolean_search(self):
        index = self.make_index()
        assert {p.row for p in index.search_term("sick")} == {"p1"}
        both = index.search_all(["chest", "pain"])
        assert [(p.row, p.qualifier) for p in both] == [("p3", "n1")]
        any_hits = index.search_any(["sick", "recovering"])
        assert {p.row for p in any_hits} == {"p1", "p2"}

    def test_phrase_search_requires_adjacency(self):
        index = self.make_index()
        index.add_document("p4", "n1", "sick of waiting, very impatient")  # words present, not adjacent
        assert {p.row for p in index.search_phrase("very sick")} == {"p1"}

    def test_rows_with_min_documents(self):
        index = self.make_index()
        assert index.rows_with_min_documents("very sick", 3) == ["p1"]
        assert index.rows_with_min_documents("very sick", 4) == []

    def test_remove_row(self):
        index = self.make_index()
        removed = index.remove_row("p1")
        assert removed == 3
        assert index.search_phrase("very sick") == []

    def test_document_lookup_and_sizes(self):
        index = self.make_index()
        assert "chest pain" in index.document("p3", "n1")
        assert len(index) == 5
        assert index.vocabulary_size > 5


class TestTablets:
    def test_split_and_balance(self):
        store = SortedKeyValueStore()
        manager = TabletManager("t", split_threshold=10, servers=["s0", "s1"])
        for i in range(25):
            store.put(f"row_{i:03d}", "f", "q", i)
        assert manager.maybe_split(store) is True
        assert len(manager.tablets) == 2
        counts = manager.balance()
        assert sum(counts.values()) == 2
        # Every row is covered by exactly one tablet.
        for i in range(25):
            manager.tablet_for_row(f"row_{i:03d}")

    def test_no_split_below_threshold(self):
        store = SortedKeyValueStore()
        manager = TabletManager("t", split_threshold=1000)
        store.put("a", "f", "q", 1)
        assert manager.maybe_split(store) is False


class TestKeyValueEngine:
    def test_put_scan_get_row(self):
        engine = KeyValueEngine()
        engine.create_table("patients")
        engine.put("patients", "p1", "attr", "age", 64)
        engine.put("patients", "p1", "attr", "race", "white")
        assert engine.get_row("patients", "p1") == {"attr:age": 64, "attr:race": "white"}
        assert len(engine.scan("patients")) == 2

    def test_text_search_requires_indexed_table(self):
        engine = KeyValueEngine()
        engine.create_table("plain")
        with pytest.raises(ObjectNotFoundError):
            engine.text_search("plain", "anything")

    def test_text_search_on_indexed_table(self):
        engine = KeyValueEngine()
        engine.create_table("notes", text_indexed=True)
        engine.put("notes", "p1", "doctor", "n1", "patient very sick")
        engine.put("notes", "p1", "doctor", "n2", "patient very sick again")
        engine.put("notes", "p2", "doctor", "n1", "doing fine")
        assert engine.rows_with_min_documents("notes", "very sick", 2) == ["p1"]

    def test_export_import_roundtrip(self):
        engine = KeyValueEngine()
        engine.create_table("t")
        engine.put("t", "r1", "f", "q1", "a")
        engine.put("t", "r2", "f", "q1", "b")
        relation = engine.export_relation("t")
        assert relation.schema.names == ["row", "family", "qualifier", "value"]
        other = KeyValueEngine("copy")
        other.import_relation("imported", relation)
        assert other.has_object("imported")

    def test_missing_table_errors(self):
        engine = KeyValueEngine()
        with pytest.raises(ObjectNotFoundError):
            engine.scan("missing")
        with pytest.raises(ObjectNotFoundError):
            engine.drop_object("missing")


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.text(alphabet="abcde", min_size=1, max_size=4),
                          st.integers(0, 100)), min_size=1, max_size=60))
def test_property_store_scan_is_sorted(entries):
    """Property: scanning the store always yields keys in non-decreasing row order."""
    store = SortedKeyValueStore()
    for row, value in entries:
        store.put(row, "f", "q", value)
    rows = [e.key.row for e in store.scan()]
    assert rows == sorted(rows)
    assert len(rows) == len(entries)
