"""Tests for the synthetic MIMIC II generator, the polystore loader and the workload."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mimic import MimicGenerator, build_polystore, full_workload, run_workload, waveform_feed_tuples
from tests.conftest import SMALL_GENERATOR


class TestGenerator:
    def test_deterministic_given_seed(self):
        a = SMALL_GENERATOR.generate()
        b = SMALL_GENERATOR.generate()
        assert [p.race for p in a.patients] == [p.race for p in b.patients]
        assert [round(x.stay_days, 3) for x in a.admissions] == [round(x.stay_days, 3) for x in b.admissions]
        np.testing.assert_allclose(a.waveforms[0].values, b.waveforms[0].values)

    def test_cardinalities(self, mimic_dataset):
        summary = mimic_dataset.summary()
        assert summary["patients"] == 60
        assert summary["admissions"] >= summary["patients"]
        assert summary["prescriptions"] > summary["admissions"]
        assert summary["waveforms"] == 3

    def test_referential_integrity(self, mimic_dataset):
        patient_ids = {p.patient_id for p in mimic_dataset.patients}
        admission_ids = {a.admission_id for a in mimic_dataset.admissions}
        assert all(a.patient_id in patient_ids for a in mimic_dataset.admissions)
        assert all(p.admission_id in admission_ids for p in mimic_dataset.prescriptions)
        assert all(n.admission_id in admission_ids for n in mimic_dataset.notes)
        assert all(l.admission_id in admission_ids for l in mimic_dataset.labs)

    def test_value_ranges(self, mimic_dataset):
        assert all(18 <= p.age <= 95 for p in mimic_dataset.patients)
        assert all(0 < a.stay_days <= 60 for a in mimic_dataset.admissions)
        assert all(0 < a.severity <= 1 for a in mimic_dataset.admissions)
        assert all(a.outcome in ("discharged", "deceased") for a in mimic_dataset.admissions)

    def test_waveform_anomalies_present_and_marked(self, mimic_dataset):
        for waveform in mimic_dataset.waveforms:
            assert waveform.has_anomaly  # anomaly_fraction=1.0 in the fixture generator
            assert waveform.anomaly_start < waveform.anomaly_end <= len(waveform.values)
            burst = np.abs(waveform.values[waveform.anomaly_start : waveform.anomaly_end])
            normal = np.abs(waveform.values[: waveform.anomaly_start])
            assert burst.mean() > normal.mean()

    def test_planted_seedb_reversal(self):
        """The elective subpopulation reverses the global race/stay trend (Figure 2)."""
        dataset = MimicGenerator(patient_count=2000, waveform_patients=0, seed=5).generate()
        by_patient = {p.patient_id: p for p in dataset.patients}

        def mean_stay(admission_type: str | None, race: str) -> float:
            stays = [
                a.stay_days for a in dataset.admissions
                if by_patient[a.patient_id].race == race
                and (admission_type is None or a.admission_type == admission_type)
            ]
            return float(np.mean(stays))

        # Globally (non-elective), black patients stay longer than white patients…
        assert mean_stay("emergency", "black") > mean_stay("emergency", "white")
        # …but inside the elective subpopulation the relationship reverses.
        assert mean_stay("elective", "black") < mean_stay("elective", "white")

    def test_notes_contain_demo_phrase(self, mimic_dataset):
        assert any("very sick" in note.text for note in mimic_dataset.notes)


class TestLoader:
    def test_placement_matches_paper(self, deployment):
        objects = deployment.bigdawg.catalog.describe()["objects"]
        assert objects["patients"] == "postgres"
        assert objects["waveform_history"] == "scidb"
        assert objects["notes"] == "accumulo"
        assert objects["waveform_feed"] == "sstore"

    def test_relational_row_counts_match_dataset(self, deployment):
        dataset = deployment.dataset
        assert deployment.relational.table_row_count("patients") == len(dataset.patients)
        assert deployment.relational.table_row_count("admissions") == len(dataset.admissions)
        assert deployment.relational.table_row_count("labs") == len(dataset.labs)

    def test_array_holds_every_waveform_sample(self, deployment):
        dataset = deployment.dataset
        array = deployment.array.array("waveform_history")
        expected = sum(len(w.values) for w in dataset.waveforms)
        assert array.populated_cells == expected
        np.testing.assert_allclose(
            array.buffer("value")[0, :10], dataset.waveforms[0].values[:10]
        )

    def test_notes_are_text_indexed(self, deployment):
        hits = deployment.keyvalue.text_search("notes", "very sick")
        assert len(hits) > 0

    def test_waveform_feed_tuples_ordered(self, deployment):
        feed = waveform_feed_tuples(deployment.dataset, signal_id=0)
        assert len(feed) == len(deployment.dataset.waveforms[0].values)
        timestamps = [ts for ts, _ in feed]
        assert timestamps == sorted(timestamps)
        assert waveform_feed_tuples(deployment.dataset, signal_id=999) == []


class TestWorkload:
    def test_every_workload_query_runs(self, deployment):
        results = run_workload(deployment)
        assert len(results) == len(full_workload())
        assert results["patients_given_heparin"].rows[0]["n"] >= 0
        stay = {r["p.race"]: r["avg_stay"] for r in results["stay_by_race"]}
        assert len(stay) >= 3
        assert results["waveform_global_stats"].rows[0]["stddev(value)"] > 0

    def test_workload_classes_cover_paper_sections(self):
        classes = {q.query_class for q in full_workload()}
        assert classes == {"sql_analytics", "complex_analytics", "text_search", "cross_island"}
