"""Tests for real-time waveform monitoring and the one-size-fits-all / micro-batch baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import MicroBatchProcessor, build_one_size_fits_all
from repro.mimic import waveform_feed_tuples
from repro.monitoring import ReferenceProfile, WaveformMonitor


# --------------------------------------------------------------- monitoring
class TestReferenceProfile:
    def test_profile_statistics(self, deployment):
        waveform = deployment.dataset.waveforms[0]
        normal = waveform.values[: waveform.anomaly_start]
        profile = ReferenceProfile.from_samples(normal, waveform.sample_rate_hz)
        assert profile.rms > 0
        assert 0.5 <= profile.dominant_frequency_hz <= 3.0
        assert profile.sample_rate_hz == waveform.sample_rate_hz


class TestWaveformMonitor:
    def _run_monitor(self, deployment, signal_id: int, window_seconds: float = 0.5):
        from repro.engines.streaming import StreamingEngine
        from repro.mimic.loader import load_streaming

        waveform = deployment.dataset.waveforms[signal_id]
        reference = ReferenceProfile.from_samples(
            waveform.values[: waveform.anomaly_start], waveform.sample_rate_hz
        )
        engine = StreamingEngine(f"sstore_{signal_id}")
        load_streaming(engine, deployment.dataset)
        monitor = WaveformMonitor(reference, window_seconds=window_seconds)
        monitor.register(engine, "waveform_feed")
        for timestamp, payload in waveform_feed_tuples(deployment.dataset, signal_id):
            engine.append("waveform_feed", timestamp, payload)
        return waveform, monitor, engine

    def test_detects_anomaly_with_low_latency_and_no_false_alarms(self, deployment):
        waveform, monitor, _engine = self._run_monitor(deployment, 0)
        anomaly_time = waveform.anomaly_start / waveform.sample_rate_hz
        false_alarms = [a for a in monitor.alerts if a.timestamp < anomaly_time]
        assert false_alarms == []
        alert = monitor.first_alert_after(anomaly_time)
        assert alert is not None
        latency = alert.timestamp - anomaly_time
        assert 0 <= latency < 1.0  # well inside real-time budget

    def test_alert_payload_propagated_to_engine(self, deployment):
        _waveform, monitor, engine = self._run_monitor(deployment, 1)
        assert len(engine.alerts) == len(monitor.alerts)
        if engine.alerts:
            assert engine.alerts[0]["kind"] in ("amplitude", "frequency")

    def test_no_alert_before_window_fills(self, deployment):
        waveform, monitor, _engine = self._run_monitor(deployment, 2, window_seconds=0.5)
        # The first min_window_samples tuples cannot produce alerts.
        early_cutoff = monitor.min_window_samples / waveform.sample_rate_hz
        assert all(a.timestamp >= early_cutoff for a in monitor.alerts)


# ------------------------------------------------------------------ baselines
class TestOneSizeFitsAll:
    @pytest.fixture()
    def onesize(self, mimic_dataset):
        return build_one_size_fits_all(mimic_dataset)

    def test_sql_analytics_match_polystore(self, onesize, deployment):
        polystore = deployment.bigdawg.execute(
            "RELATIONAL(SELECT count(*) AS n FROM prescriptions WHERE drug = 'heparin')"
        ).rows[0]["n"]
        assert onesize.patients_given_drug("heparin") == polystore
        stays = onesize.stay_by_race()
        assert set(stays) >= {"white", "black"}

    def test_waveform_statistics_match_array_engine(self, onesize, deployment):
        array_stats = deployment.bigdawg.execute(
            "ARRAY(aggregate(waveform_history, avg(value), stddev(value)))"
        ).rows[0]
        sql_stats = onesize.waveform_statistics()
        assert sql_stats["avg"] == pytest.approx(array_stats["avg(value)"], abs=1e-6)
        assert sql_stats["stddev"] == pytest.approx(array_stats["stddev(value)"], rel=1e-3)

    def test_windowed_average_and_frequency(self, onesize, deployment):
        best = onesize.windowed_max_average(window=32)
        assert best > 0
        frequency = onesize.dominant_frequency(0)
        assert frequency > 0

    def test_text_search_agrees_with_text_island(self, onesize, deployment):
        sql_rows = onesize.patients_with_min_phrase("very sick", 3)
        island_rows = [
            r["row"] for r in deployment.bigdawg.execute('TEXT(SEARCH notes FOR "very sick" MIN 3)')
        ]
        assert sql_rows == island_rows

    def test_feed_ingest_and_poll(self, onesize, mimic_dataset):
        batch = waveform_feed_tuples(mimic_dataset, 0)[:100]
        inserted = onesize.ingest_feed_batch(batch)
        assert inserted == 100
        average = onesize.poll_recent_average(0, last_n=10)
        assert average is not None


class TestMicroBatch:
    def test_alerts_only_at_batch_boundaries(self):
        processor = MicroBatchProcessor(
            batch_interval_seconds=1.0, window_seconds=0.5,
            detector=lambda values: float(np.max(np.abs(values))), threshold=5.0,
        )
        # An anomalous value arrives at t=0.7 but the batch only closes at t>=1.0.
        processor.ingest(0.7, 10.0)
        assert processor.alerts == []
        processor.ingest(1.05, 0.0)
        assert len(processor.alerts) == 1
        assert processor.alerts[0].timestamp >= 1.0

    def test_detection_latency_floor_is_batch_interval(self, deployment):
        waveform = deployment.dataset.waveforms[0]
        reference = ReferenceProfile.from_samples(
            waveform.values[: waveform.anomaly_start], waveform.sample_rate_hz
        )
        processor = MicroBatchProcessor(
            batch_interval_seconds=1.0, window_seconds=0.5,
            detector=lambda values: float(np.sqrt(np.mean(values ** 2))),
            threshold=reference.rms * 1.5,
        )
        for timestamp, payload in waveform_feed_tuples(deployment.dataset, 0):
            processor.ingest(timestamp, payload[2])
        processor.flush()
        anomaly_time = waveform.anomaly_start / waveform.sample_rate_hz
        latency = processor.detection_latency(anomaly_time)
        assert latency is not None
        assert latency >= 0
        assert processor.batches_processed > 0

    def test_flush_processes_trailing_buffer(self):
        processor = MicroBatchProcessor(
            batch_interval_seconds=10.0, window_seconds=5.0,
            detector=lambda values: float(values.max()), threshold=1.0,
        )
        processor.ingest(0.5, 3.0)
        assert processor.alerts == []
        fired = processor.flush()
        assert len(fired) == 1
