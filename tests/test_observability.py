"""Tests for the observability subsystem: tracing (context propagation across
the runtime's thread pools), the typed metric registry, queue-wait accounting,
windowed throughput, per-operator profiling / EXPLAIN ANALYZE, the slow-query
log, and the trace exporters."""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from repro.common.parallel import TaskContext
from repro.common.serialization import BinaryCodec
from repro.core.bigdawg import BigDawg
from repro.engines.array import ArrayEngine
from repro.engines.keyvalue import KeyValueEngine
from repro.engines.relational import RelationalEngine
from repro.observability import (
    NULL_SPAN,
    MetricRegistry,
    SlowQueryLog,
    Tracer,
    capture_context,
    current_span,
    get_tracer,
    render_tree,
    set_tracer,
    to_chrome_trace,
    to_otlp,
    with_context,
    write_chrome_trace,
    write_otlp,
)
from repro.runtime import AdmissionController, PolystoreRuntime, RuntimeMetrics


@pytest.fixture()
def traced():
    """Install a fresh enabled tracer for the test; restore the old one."""
    tracer = Tracer(enabled=True)
    previous = set_tracer(tracer)
    yield tracer
    set_tracer(previous)


@pytest.fixture()
def bigdawg() -> BigDawg:
    bd = BigDawg()
    postgres = RelationalEngine("postgres")
    scidb = ArrayEngine("scidb")
    accumulo = KeyValueEngine("accumulo")
    bd.add_engine(postgres, islands=["relational"])
    bd.add_engine(scidb, islands=["array"])
    bd.add_engine(accumulo, islands=["text"])
    postgres.execute("CREATE TABLE patients (id INTEGER PRIMARY KEY, age INTEGER)")
    postgres.execute("INSERT INTO patients VALUES (1, 64), (2, 70), (3, 41), (4, 77)")
    scidb.load_numpy("wave_copy", np.arange(6, dtype=float).reshape(2, 3))
    return bd


def sql_engine(mode: str = "vectorized", rows: int = 400) -> RelationalEngine:
    engine = RelationalEngine("pg", execution_mode=mode)
    engine.execute(
        "CREATE TABLE fact (id INTEGER PRIMARY KEY, grp INTEGER, value FLOAT)"
    )
    engine.insert_rows(
        "fact", [(i, i % 10, float(i % 37)) for i in range(rows)]
    )
    engine.execute("CREATE TABLE dims (grp INTEGER PRIMARY KEY, label TEXT)")
    engine.insert_rows("dims", [(g, f"seg_{g % 3}") for g in range(10)])
    return engine


JOIN_SQL = (
    "SELECT d.label, count(*) AS n, sum(f.value) AS s FROM fact f "
    "JOIN dims d ON f.grp = d.grp GROUP BY d.label ORDER BY d.label"
)


# ------------------------------------------------------------------- tracer
class TestTracer:
    def test_disabled_tracer_returns_null_span_and_collects_nothing(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("anything", kind="test", big=list(range(3)))
        assert span is NULL_SPAN  # identity: zero allocation on the hot path
        with span:
            span.set("k", "v")
        assert tracer.record("x", start_s=0.0, duration_s=1.0) is NULL_SPAN
        assert len(tracer) == 0

    def test_spans_nest_and_share_a_trace(self):
        tracer = Tracer(enabled=True)
        with tracer.span("root", kind="lifecycle") as root:
            with tracer.span("child") as child:
                assert current_span() is child
            assert current_span() is root
        assert current_span() is None
        spans = {s.name: s for s in tracer.spans()}
        assert spans["child"].parent_id == spans["root"].span_id
        assert spans["child"].trace_id == spans["root"].trace_id
        assert spans["root"].parent_id is None

    def test_exception_is_recorded_and_context_restored(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        assert current_span() is None
        (span,) = tracer.spans("boom")
        assert span.attrs["error"] == "ValueError"

    def test_buffer_is_bounded(self):
        tracer = Tracer(enabled=True, max_spans=2)
        for i in range(4):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer) == 2
        assert tracer.dropped == 2

    def test_with_context_installs_and_restores(self):
        tracer = Tracer(enabled=True)
        with tracer.span("parent") as parent:
            ctx = capture_context()
        # The captured context carries (span, tracer override, cancel token).
        assert ctx == (parent, None, None)

        seen: list[object] = []

        def task() -> None:
            seen.append(current_span())

        with_context(ctx, task)
        assert seen == [parent]
        assert current_span() is None
        # ctx=None runs the function directly.
        with_context(None, task)
        assert seen[-1] is None


class TestContextPropagation:
    def test_task_context_workers_inherit_the_ambient_span(self, traced):
        observed: list[object] = []

        def work(item: int) -> int:
            observed.append(current_span())
            return item * 2

        with traced.span("query") as span:
            ctx = TaskContext(2)
            try:
                results = list(ctx.map_ordered(work, range(6)))
            finally:
                ctx.close()
        assert results == [i * 2 for i in range(6)]
        assert observed and all(s is span for s in observed)

    def test_morsel_probe_spans_attach_to_the_query_trace(self, traced):
        engine = sql_engine()
        engine.parallelism = 2
        with traced.span("query", kind="lifecycle") as root:
            engine.execute(JOIN_SQL)
        probes = traced.spans("join.probe_morsel")
        assert probes, "the parallel probe emitted no morsel spans"
        assert all(s.trace_id == root.trace_id for s in probes)
        # Operator spans ride along on the same trace.
        assert any(s.name.startswith("op.") for s in traced.spans())

    def test_spill_join_emits_leaf_spans(self, traced):
        engine = sql_engine()
        engine.join_memory_budget = 256
        with traced.span("query", kind="lifecycle") as root:
            engine.execute(JOIN_SQL)
        leaves = traced.spans("join.spill_leaf")
        assert leaves, "the budgeted join never hit the spill path"
        assert all(s.trace_id == root.trace_id for s in leaves)
        assert engine.partitions_spilled > 0


class TestTracedResultsIdentical:
    @pytest.mark.parametrize("scenario", ["plain", "parallel", "spill"])
    def test_tracing_never_changes_results(self, scenario):
        def build() -> RelationalEngine:
            engine = sql_engine()
            if scenario == "parallel":
                engine.parallelism = 2
            if scenario == "spill":
                engine.join_memory_budget = 256
            return engine

        codec = BinaryCodec()
        baseline = codec.encode(build().execute(JOIN_SQL))
        tracer = Tracer(enabled=True)
        previous = set_tracer(tracer)
        try:
            traced_bytes = codec.encode(build().execute(JOIN_SQL))
        finally:
            set_tracer(previous)
        assert traced_bytes == baseline
        assert len(tracer) > 0


# ----------------------------------------------------------------- runtime
class TestRuntimeTracing:
    def test_query_lifecycle_spans(self, traced, bigdawg):
        runtime = PolystoreRuntime(bigdawg, workers=2)
        try:
            runtime.execute("RELATIONAL(SELECT count(*) AS n FROM patients)",
                            use_cache=False)
        finally:
            runtime.shutdown()
        names = traced.span_names()
        assert {"query", "queued", "planned", "executed", "admitted",
                "plan_step"} <= names
        (root,) = traced.spans("query")
        assert root.parent_id is None
        # Everything the query did shares its trace, including the plan step
        # executed on a scheduler pool thread.
        (step,) = traced.spans("plan_step")
        assert step.trace_id == root.trace_id
        (executed,) = traced.spans("executed")
        assert executed.parent_id == root.span_id

    def test_cast_stages_are_traced(self, traced, bigdawg):
        runtime = PolystoreRuntime(bigdawg, workers=2)
        try:
            runtime.execute(
                "RELATIONAL(SELECT count(*) AS n FROM CAST(wave_copy, relational) "
                "WHERE value >= 0)",
                use_cache=False,
            )
        finally:
            runtime.shutdown()
        names = traced.span_names()
        assert {"cast", "cast.export", "cast.encode", "cast.decode",
                "cast.import"} <= names
        (root,) = traced.spans("query")
        (cast_span,) = traced.spans("cast")
        assert cast_span.trace_id == root.trace_id
        encode = traced.spans("cast.encode")
        assert encode and all(s.attrs.get("bytes", 0) > 0 for s in encode)

    def test_cache_hit_marks_root_span(self, traced, bigdawg):
        runtime = PolystoreRuntime(bigdawg, workers=2)
        try:
            query = "RELATIONAL(SELECT count(*) AS n FROM patients)"
            runtime.execute(query)
            runtime.execute(query)
        finally:
            runtime.shutdown()
        roots = traced.spans("query")
        assert len(roots) == 2
        assert [bool(s.attrs.get("cached")) for s in roots].count(True) == 1

    def test_disabled_tracer_collects_nothing_through_the_runtime(self, bigdawg):
        tracer = get_tracer()
        assert not tracer.enabled
        before = len(tracer)
        runtime = PolystoreRuntime(bigdawg, workers=2)
        try:
            runtime.execute("RELATIONAL(SELECT count(*) AS n FROM patients)")
        finally:
            runtime.shutdown()
        assert len(tracer) == before


# ---------------------------------------------------------------- registry
class TestMetricRegistry:
    def test_counters_gauges_histograms(self):
        registry = MetricRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(2)
        registry.gauge("depth").set(7)
        for value in (1.0, 2.0, 3.0, 4.0):
            registry.histogram("lat").observe(value)
        snap = registry.snapshot()
        assert snap["hits"] == 3
        assert snap["depth"] == 7
        assert snap["lat_count"] == 4
        assert snap["lat_total"] == pytest.approx(10.0)
        assert snap["lat_mean"] == pytest.approx(2.5)
        assert snap["lat_max"] == pytest.approx(4.0)
        assert snap["lat_p50"] == pytest.approx(2.5)

    def test_computed_gauge(self):
        registry = MetricRegistry()
        registry.register_gauge("answer", lambda: 42)
        assert registry.snapshot()["answer"] == 42

    def test_type_conflicts_are_rejected(self):
        registry = MetricRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_gauge_set_max(self):
        registry = MetricRegistry()
        gauge = registry.gauge("peak")
        gauge.set_max(5)
        gauge.set_max(3)
        assert gauge.value == 5


# ------------------------------------------------- queue wait & throughput
class TestQueueWaitAndThroughput:
    def test_gate_separates_wait_from_hold(self):
        waits: list[float] = []
        controller = AdmissionController(slots_per_engine=1, timeout=5.0)
        controller.wait_sink = waits.append
        entered = threading.Event()
        release = threading.Event()

        def holder() -> None:
            with controller.admit(["pg"]):
                entered.set()
                release.wait(5.0)

        thread = threading.Thread(target=holder)
        thread.start()
        assert entered.wait(5.0)
        time.sleep(0.05)  # let the next admit genuinely queue
        start = time.monotonic()
        waiter_done = threading.Event()

        def waiter() -> None:
            with controller.admit(["pg"]):
                waiter_done.set()

        wthread = threading.Thread(target=waiter)
        wthread.start()
        time.sleep(0.05)
        release.set()
        assert waiter_done.wait(5.0)
        thread.join(5.0)
        wthread.join(5.0)
        assert time.monotonic() - start >= 0.04
        # Both admissions report their wait; the blocked one dominates.
        assert len(waits) == 2 and max(waits) >= 0.04
        gate = controller.describe()["pg"]
        assert gate["wait_seconds_total"] >= 0.04
        assert gate["held_seconds_total"] > 0

    def test_queue_wait_lands_in_the_runtime_snapshot(self, bigdawg):
        runtime = PolystoreRuntime(bigdawg, workers=2)
        try:
            runtime.execute("RELATIONAL(SELECT count(*) AS n FROM patients)",
                            use_cache=False)
            snap = runtime.metrics.snapshot()
        finally:
            runtime.shutdown()
        assert snap["queue_wait_s_count"] >= 1
        assert "admission_wait_s_total" in snap
        assert "admission_held_s_total" in snap
        assert snap["queue_depth"] == 0

    def test_windowed_throughput_resets(self):
        metrics = RuntimeMetrics()
        for _ in range(5):
            metrics.record_completed(0.001)
        recent = metrics.windowed_throughput(window_seconds=30.0)
        assert recent > 0
        snap = metrics.snapshot()
        assert snap["throughput_recent_qps"] > 0
        metrics.reset_window()
        assert metrics.windowed_throughput(window_seconds=30.0) == 0.0
        # Lifetime throughput is untouched by a window reset.
        assert metrics.snapshot()["completed"] == 5

    def test_snapshot_queue_depth_override(self):
        metrics = RuntimeMetrics()
        assert metrics.snapshot(queue_depth=9)["queue_depth"] == 9


# ---------------------------------------------------------- explain analyze
class TestExplainAnalyze:
    def test_vectorized_operators_report_estimates_and_actuals(self):
        engine = sql_engine()
        text = engine.explain(JOIN_SQL, analyze=True)
        lines = text.splitlines()
        operator_lines = [
            line for line in lines
            if line and not line.startswith(("ExecutionMode", "Stats", "Parallel", "Total"))
        ]
        assert operator_lines
        for line in operator_lines:
            assert "estimated=" in line and "actual=" in line, line
        assert any("[vectorized]" in line for line in operator_lines)
        assert any("batches=" in line for line in operator_lines)
        assert "Total(rows=" in text and "time=" in text

    def test_actual_rows_match_execution(self):
        engine = sql_engine()
        sql = "SELECT grp, count(*) AS n FROM fact GROUP BY grp ORDER BY grp"
        expected = len(engine.execute(sql).rows)
        text = engine.explain(sql, analyze=True)
        assert f"Total(rows={expected}," in text
        top_operator = text.splitlines()[3]  # header is 3 lines for this engine
        assert f"actual={expected} rows" in top_operator

    def test_row_mode_reports_actuals(self):
        engine = sql_engine(mode="row")
        text = engine.explain(JOIN_SQL, analyze=True)
        assert text.startswith("ExecutionMode(row)")
        assert "actual=" in text and "Total(rows=" in text

    def test_spill_join_reports_actuals(self):
        engine = sql_engine()
        # Below the build side's *estimated* bytes too, so the plan is
        # tagged [spill] up front and the execution actually spills.
        engine.join_memory_budget = 128
        text = engine.explain(JOIN_SQL, analyze=True)
        join_line = next(line for line in text.splitlines() if "Join" in line)
        assert "[spill]" in join_line and "actual=" in join_line
        assert engine.partitions_spilled > 0

    def test_plain_explain_is_unchanged(self):
        engine = sql_engine()
        before = engine.queries_executed
        text = engine.explain(JOIN_SQL)
        assert text.startswith("ExecutionMode(vectorized)")
        assert "[vectorized]" in text
        assert "actual=" not in text and "Total(" not in text
        # analyze=False must not execute the query.
        assert engine.queries_executed == before

    def test_analyze_results_stay_correct_and_counted(self):
        engine = sql_engine()
        before = engine.queries_executed
        engine.explain(JOIN_SQL, analyze=True)
        assert engine.queries_executed == before + 1
        # The profiler uninstalls afterwards: a plain run stays unprofiled.
        assert engine._batch_executor.profiler is None
        assert engine._executor.profiler is None


# ------------------------------------------------------------- slow queries
class TestSlowQueryLog:
    def test_disabled_by_default(self):
        log = SlowQueryLog()
        assert not log.enabled
        assert not log.observe("SELECT 1", 100.0)
        assert len(log) == 0

    def test_engine_logs_slow_selects(self):
        engine = sql_engine()
        engine.slow_queries.threshold_s = 0.0
        engine.execute("SELECT count(*) AS n FROM fact")
        entries = engine.slow_queries.entries()
        assert entries and "count(*)" in entries[0].query
        assert entries[0].attrs["mode"] == "vectorized"

    def test_runtime_logs_slow_queries(self, bigdawg):
        runtime = PolystoreRuntime(bigdawg, workers=2)
        runtime.slow_queries.threshold_s = 0.0
        try:
            runtime.execute("RELATIONAL(SELECT count(*) AS n FROM patients)",
                            use_cache=False)
        finally:
            runtime.shutdown()
        assert len(runtime.slow_queries) == 1

    def test_capacity_is_bounded(self):
        log = SlowQueryLog(threshold_s=0.0, capacity=3)
        for i in range(10):
            log.observe(f"q{i}", 1.0)
        assert len(log) == 3
        assert [e.query for e in log.entries()] == ["q7", "q8", "q9"]


# ----------------------------------------------------------------- exporters
class TestExport:
    def _traced_run(self) -> Tracer:
        tracer = Tracer(enabled=True)
        with tracer.span("query", kind="lifecycle", query="SELECT 1"):
            with tracer.span("executed", kind="lifecycle"):
                pass
        return tracer

    def test_chrome_trace_shape(self):
        tracer = self._traced_run()
        events = to_chrome_trace(tracer.spans())
        complete = [e for e in events if e["ph"] == "X"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert len(complete) == 2
        assert metadata and metadata[0]["name"] == "thread_name"
        names = {e["name"] for e in complete}
        assert names == {"query", "executed"}
        for event in complete:
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert "span_id" in event["args"]

    def test_write_chrome_trace_roundtrips(self, tmp_path):
        tracer = self._traced_run()
        target = tmp_path / "trace.json"
        count = write_chrome_trace(target, tracer.spans())
        assert count >= 2  # two complete events plus thread metadata rows
        loaded = json.loads(target.read_text())
        assert any(e["name"] == "query" for e in loaded)

    def test_otlp_shape(self):
        tracer = self._traced_run()
        payload = to_otlp(tracer.spans(), service_name="unit-test")
        (resource,) = payload["resourceSpans"]
        (attr,) = resource["resource"]["attributes"]
        assert attr == {"key": "service.name", "value": {"stringValue": "unit-test"}}
        (scope,) = resource["scopeSpans"]
        spans = scope["spans"]
        assert [s["name"] for s in spans] == ["query", "executed"]
        parent, child = spans
        # Hex ids: 32-char traceId shared, 16-char spanId, child links parent.
        assert parent["traceId"] == child["traceId"]
        assert len(parent["traceId"]) == 32
        assert len(parent["spanId"]) == 16
        assert parent["parentSpanId"] == ""
        assert child["parentSpanId"] == parent["spanId"]
        for span in spans:
            assert span["kind"] == 1  # SPAN_KIND_INTERNAL
            # int64 nanos are strings in the OTLP JSON mapping.
            assert int(span["endTimeUnixNano"]) >= int(span["startTimeUnixNano"])
        keys = {a["key"]: a["value"] for a in parent["attributes"]}
        assert keys["span.kind"] == {"stringValue": "lifecycle"}
        assert keys["query"] == {"stringValue": "SELECT 1"}
        assert "thread.name" in keys

    def test_otlp_types_attribute_values(self):
        tracer = Tracer(enabled=True)
        with tracer.span("s", kind="step", count=3, ratio=0.5, ok=True, label="x"):
            pass
        payload = to_otlp(tracer.spans())
        (span,) = payload["resourceSpans"][0]["scopeSpans"][0]["spans"]
        values = {a["key"]: a["value"] for a in span["attributes"]}
        assert values["count"] == {"intValue": "3"}
        assert values["ratio"] == {"doubleValue": 0.5}
        assert values["ok"] == {"boolValue": True}
        assert values["label"] == {"stringValue": "x"}

    def test_write_otlp_roundtrips(self, tmp_path):
        tracer = self._traced_run()
        target = tmp_path / "otlp.json"
        count = write_otlp(target, tracer.spans())
        assert count == 2
        loaded = json.loads(target.read_text())
        names = [
            s["name"]
            for s in loaded["resourceSpans"][0]["scopeSpans"][0]["spans"]
        ]
        assert names == ["query", "executed"]

    def test_render_tree_indents_children(self):
        tracer = self._traced_run()
        text = render_tree(tracer.spans())
        lines = text.splitlines()
        query_line = next(l for l in lines if "query" in l)
        child_line = next(l for l in lines if "executed" in l)
        indent = len(child_line) - len(child_line.lstrip())
        assert indent > len(query_line) - len(query_line.lstrip())
        assert "ms" in child_line
