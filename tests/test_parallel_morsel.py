"""Tests for morsel-driven parallelism, radix partitioning and the spill join.

Three contracts are under test:

* **Invisibility.**  Worker count, partition count and the join memory
  budget are pure performance knobs — results are byte-identical (through
  the binary codec) to the serial, in-memory pipeline, including outer
  joins, NULL-heavy keys and grouped aggregates.
* **Engagement.**  Under a small budget the join really does spill: the
  ``partitions_spilled`` counter moves and EXPLAIN tags the join
  ``[spill]`` when statistics predict the overflow.
* **Plumbing.**  The runtime's ``parallelism`` knob reaches every
  relational engine, borrows extra workers from one shared credit pool,
  and the new counters surface in ``describe()``.
"""

from __future__ import annotations

import random
import threading

import numpy as np
import pytest

from repro.common.keycodes import partition_codes
from repro.common.parallel import (
    TaskContext,
    WorkerCredits,
    partition_count_for,
    resolve_parallelism,
)
from repro.common.serialization import BinaryCodec
from repro.engines.relational import RelationalEngine


# ------------------------------------------------------------------ fixtures
def make_engine(
    parallelism: int | str = 1,
    budget: int | None = None,
    mode: str = "vectorized",
) -> RelationalEngine:
    """A deterministic two-table engine with NULL-heavy, skewed join keys."""
    e = RelationalEngine("pg", execution_mode=mode)
    e.parallelism = parallelism
    e.join_memory_budget = budget
    e.execute(
        "CREATE TABLE events (id INTEGER PRIMARY KEY, user_id INTEGER, "
        "kind TEXT, amount FLOAT)"
    )
    e.execute("CREATE TABLE users (uid INTEGER PRIMARY KEY, name TEXT, region TEXT)")
    rng = random.Random(7)
    rows = []
    for i in range(2000):
        # Skew: user 0 owns ~25% of events; ~6% of keys are NULL.
        uid = 0 if rng.random() < 0.25 else rng.randrange(80)
        rows.append(
            (
                i,
                None if rng.random() < 0.06 else uid,
                rng.choice(["click", "view", "buy"]),
                round(rng.uniform(-5.0, 100.0), 2),
            )
        )
    e.insert_rows("events", rows)
    # Users 60..79 never match; users beyond 49 missing from some queries.
    e.insert_rows(
        "users",
        [(u, f"name{u}", rng.choice(["us", "eu", "ap"])) for u in range(70)],
    )
    e.statistics.analyze("events")
    e.statistics.analyze("users")
    return e


JOIN_GROUP_QUERIES = [
    "SELECT e.id, u.name, e.amount FROM events e JOIN users u ON e.user_id = u.uid ORDER BY e.id",
    "SELECT e.id, u.name FROM events e LEFT JOIN users u ON e.user_id = u.uid ORDER BY e.id",
    "SELECT e.id, u.uid, u.name FROM events e RIGHT JOIN users u ON e.user_id = u.uid",
    "SELECT e.id, e.user_id, u.uid FROM events e FULL OUTER JOIN users u ON e.user_id = u.uid",
    "SELECT e.id, u.name FROM events e JOIN users u ON e.user_id = u.uid AND e.amount > 20 ORDER BY e.id",
    "SELECT u.region, count(*), sum(e.amount), avg(e.amount), min(e.amount), max(e.amount) "
    "FROM events e JOIN users u ON e.user_id = u.uid GROUP BY u.region ORDER BY u.region",
    "SELECT user_id, count(*), sum(amount) FROM events GROUP BY user_id ORDER BY user_id",
    "SELECT id, count(*) FROM events GROUP BY id ORDER BY id LIMIT 50",
]


# ------------------------------------------------------------ partitioning
class TestPartitionCodes:
    def test_partitions_are_disjoint_cover_and_ordered(self):
        codes = np.array([5, 3, -1, 0, 8, 3, -1, 13, 2, 0], dtype=np.int64)
        parts = partition_codes(codes, 4)
        assert len(parts) == 4
        seen = np.concatenate(parts)
        # NULL codes (-1) appear in no partition.
        assert set(seen.tolist()) == {0, 1, 3, 4, 5, 7, 8, 9}
        for p, rows in enumerate(parts):
            assert np.all(codes[rows] % 4 == p)
            # Row order within a partition preserves input order.
            assert np.all(np.diff(rows) > 0) or rows.size <= 1

    def test_single_partition_keeps_all_valid_rows_in_order(self):
        codes = np.array([2, -1, 0, 7], dtype=np.int64)
        (rows,) = partition_codes(codes, 1)
        assert rows.tolist() == [0, 2, 3]

    def test_deterministic_across_calls(self):
        rng = np.random.default_rng(3)
        codes = rng.integers(-1, 50, size=997).astype(np.int64)
        first = partition_codes(codes, 8)
        second = partition_codes(codes, 8)
        for a, b in zip(first, second):
            assert np.array_equal(a, b)

    def test_rejects_zero_partitions(self):
        with pytest.raises(ValueError):
            partition_codes(np.array([1], dtype=np.int64), 0)


# -------------------------------------------------------------- primitives
class TestParallelPrimitives:
    def test_resolve_parallelism(self):
        assert resolve_parallelism(3) == 3
        assert resolve_parallelism("auto") >= 1
        assert resolve_parallelism(None) >= 1
        with pytest.raises(ValueError):
            resolve_parallelism(0)

    def test_partition_count_is_power_of_two_at_least_workers(self):
        for workers, expected in [(1, 1), (2, 2), (3, 4), (4, 4), (5, 8), (8, 8)]:
            assert partition_count_for(workers) == expected

    def test_map_ordered_preserves_order_with_threads(self):
        with TaskContext(4) as ctx:
            out = list(ctx.map_ordered(lambda x: x * x, range(100)))
        assert out == [x * x for x in range(100)]

    def test_map_ordered_inline_when_serial(self):
        ctx = TaskContext(1)
        thread_ids = set()

        def work(x):
            thread_ids.add(threading.get_ident())
            return x + 1

        assert list(ctx.map_ordered(work, range(5))) == [1, 2, 3, 4, 5]
        assert thread_ids == {threading.get_ident()}
        ctx.close()

    def test_run_all_returns_results_in_submission_order(self):
        with TaskContext(4) as ctx:
            results = ctx.run_all([lambda i=i: i * 10 for i in range(8)])
        assert results == [i * 10 for i in range(8)]

    def test_worker_credits_acquire_and_release(self):
        credits = WorkerCredits(3)
        assert credits.acquire_up_to(2) == 2
        assert credits.acquire_up_to(5) == 1
        assert credits.acquire_up_to(1) == 0
        credits.release(3)
        assert credits.available == 3

    def test_task_context_close_returns_credits(self):
        engine = RelationalEngine("pg")
        engine.parallelism = 4
        engine.task_credits = WorkerCredits(2)
        ctx = engine.task_context()
        assert ctx.workers == 3  # 1 own + 2 borrowed
        assert engine.task_credits.available == 0
        ctx.close()
        assert engine.task_credits.available == 2

    def test_exhausted_credits_degrade_to_serial(self):
        engine = RelationalEngine("pg")
        engine.parallelism = 4
        engine.task_credits = WorkerCredits(0)
        ctx = engine.task_context()
        assert ctx.workers == 1
        ctx.close()


# ------------------------------------------------------------- spill joins
class TestSpillJoin:
    @pytest.fixture(scope="class")
    def reference(self):
        engine = make_engine(parallelism=1, budget=None)
        codec = BinaryCodec()
        return {q: codec.encode(engine.execute(q)) for q in JOIN_GROUP_QUERIES}

    @pytest.mark.parametrize("query", JOIN_GROUP_QUERIES)
    def test_spill_results_byte_identical(self, reference, query):
        engine = make_engine(parallelism=1, budget=256)
        codec = BinaryCodec()
        assert codec.encode(engine.execute(query)) == reference[query]

    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("query", JOIN_GROUP_QUERIES)
    def test_parallel_spill_results_byte_identical(self, reference, workers, query):
        engine = make_engine(parallelism=workers, budget=256)
        codec = BinaryCodec()
        assert codec.encode(engine.execute(query)) == reference[query]

    def test_small_budget_engages_spill_counters(self):
        engine = make_engine(budget=256)
        engine.execute(JOIN_GROUP_QUERIES[0])
        assert engine.partitions_spilled > 0

    def test_tiny_budget_recurses_and_completes(self):
        # A self-join puts ~250 build rows in each of 8 partitions; at a
        # 1-byte budget every partition re-exceeds it and sub-partitions
        # recursively before processing leaves in memory.
        query = (
            "SELECT a.id, b.amount FROM events a JOIN events b ON a.id = b.id "
            "ORDER BY a.id"
        )
        codec = BinaryCodec()
        expected = codec.encode(make_engine(budget=None).execute(query))
        engine = make_engine(budget=1)
        assert codec.encode(engine.execute(query)) == expected
        assert engine.partitions_spilled > engine.join_spill_partitions

    def test_no_budget_never_spills(self):
        engine = make_engine(budget=None)
        engine.execute(JOIN_GROUP_QUERIES[0])
        assert engine.partitions_spilled == 0
        assert engine.peak_build_bytes > 0

    def test_explain_reports_parallel_header_and_spill_tag(self):
        engine = make_engine(parallelism=2, budget=64)
        text = engine.explain(JOIN_GROUP_QUERIES[0])
        assert "Parallel(workers=2, partitions=2)" in text
        assert "[spill]" in text
        unbudgeted = make_engine(parallelism=2, budget=None)
        assert "[spill]" not in unbudgeted.explain(JOIN_GROUP_QUERIES[0])

    def test_morsel_counter_moves(self):
        engine = make_engine()
        engine.execute("SELECT count(*) FROM events")
        assert engine.morsels_executed > 0


# ---------------------------------------------------------------- group-by
class TestParallelGroupBy:
    def test_parallel_groupby_uses_partitioned_path(self):
        engine = make_engine(parallelism=4)
        engine.execute(
            "SELECT user_id, sum(amount) FROM events GROUP BY user_id"
        )
        assert engine.groupby_paths.get("stream_parallel", 0) > 0

    def test_serial_groupby_keeps_stream_path(self):
        engine = make_engine(parallelism=1)
        engine.execute(
            "SELECT user_id, sum(amount) FROM events GROUP BY user_id"
        )
        assert engine.groupby_paths.get("stream", 0) > 0
        assert "stream_parallel" not in engine.groupby_paths

    def test_aggregate_only_groupby_prunes_representatives(self):
        engine = make_engine()
        engine.optimizer_enabled = False  # keep all four columns flowing in
        engine.execute("SELECT kind, count(*), sum(amount) FROM events GROUP BY kind")
        assert engine.representative_columns_pruned > 0


# ------------------------------------------------------------------ HAVING
class TestHavingOnlyAggregates:
    """HAVING may reference aggregates absent from the SELECT list."""

    QUERIES = [
        "SELECT kind, max(amount) FROM events GROUP BY kind HAVING count(*) > 10 ORDER BY kind",
        "SELECT kind, count(*) FROM events GROUP BY kind HAVING sum(amount) > 100 ORDER BY kind",
        "SELECT user_id, sum(amount) FROM events GROUP BY user_id HAVING avg(amount) > 45 ORDER BY user_id",
        "SELECT kind, min(amount) FROM events GROUP BY kind "
        "HAVING max(amount) > 99 AND count(*) > 5 ORDER BY kind",
        "SELECT user_id, count(*) FROM events GROUP BY user_id HAVING min(amount) > -4.9 ORDER BY user_id",
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_modes_agree(self, query):
        vectorized = make_engine(mode="vectorized")
        row = make_engine(mode="row")
        codec = BinaryCodec()
        assert codec.encode(vectorized.execute(query)) == codec.encode(
            row.execute(query)
        )

    def test_having_only_count_filters_correctly(self):
        for mode in ("vectorized", "row"):
            e = RelationalEngine("pg", execution_mode=mode)
            e.execute("CREATE TABLE t (g TEXT, v INTEGER)")
            e.insert_rows("t", [("a", 1), ("a", 2), ("a", 3), ("b", 9)])
            rows = e.execute(
                "SELECT g, max(v) FROM t GROUP BY g HAVING count(*) > 2"
            ).rows
            assert [r.values for r in rows] == [("a", 3)]
            # The synthesized HAVING aggregate never leaks into the output.
            assert [c.name for c in rows[0].schema.columns] == ["g", "max(v)"]

    def test_having_only_parallel_parity(self):
        codec = BinaryCodec()
        serial = make_engine(parallelism=1)
        parallel = make_engine(parallelism=4)
        for query in self.QUERIES:
            assert codec.encode(parallel.execute(query)) == codec.encode(
                serial.execute(query)
            )


# ------------------------------------------------------- subquery pruning
class TestSubqueryPruning:
    @pytest.fixture()
    def engine(self):
        e = RelationalEngine("pg")
        e.execute("CREATE TABLE t (a INTEGER PRIMARY KEY, b INTEGER, c TEXT, d FLOAT)")
        e.insert_rows(
            "t", [(i, i * 10, f"c{i % 3}", i / 2.0) for i in range(30)]
        )
        e.statistics.analyze("t")
        return e

    def test_prunes_unreferenced_subquery_items(self, engine):
        query = "SELECT s.a FROM (SELECT a, b, c, d FROM t) s ORDER BY s.a"
        plan = engine.explain(query)
        assert "Project(a)" in plan
        assert "b" not in plan.split("Subquery")[1]
        rows = [r.values for r in engine.execute(query).rows]
        assert rows == [(i,) for i in range(30)]
        assert engine.columns_pruned >= 3

    def test_keeps_columns_referenced_by_inner_order_by(self, engine):
        query = "SELECT s.a FROM (SELECT a, b FROM t ORDER BY b DESC LIMIT 3) s"
        plan = engine.explain(query)
        assert "Project(a, b)" in plan
        rows = [r.values for r in engine.execute(query).rows]
        assert rows == [(29,), (28,), (27,)]

    def test_star_and_distinct_subqueries_untouched(self, engine):
        star = "SELECT s.a FROM (SELECT * FROM t) s ORDER BY s.a"
        assert [r.values for r in engine.execute(star).rows] == [
            (i,) for i in range(30)
        ]
        distinct = "SELECT s.c FROM (SELECT DISTINCT c, b FROM t) s ORDER BY s.c"
        assert "Distinct Project(c, b)" in engine.explain(distinct)
        # DISTINCT over (c, b) yields one row per source row here.
        assert len(engine.execute(distinct).rows) == 30

    def test_pruned_subquery_parity_with_unoptimized(self, engine):
        query = (
            "SELECT s.a, s.d FROM (SELECT a, b, c, d FROM t) s "
            "WHERE s.d > 5 ORDER BY s.a"
        )
        optimized = [r.values for r in engine.execute(query).rows]
        engine.optimizer_enabled = False
        baseline = [r.values for r in engine.execute(query).rows]
        assert optimized == baseline


# ------------------------------------------------------------ runtime knob
class TestRuntimeParallelism:
    @pytest.fixture()
    def runtime(self):
        from repro.core.bigdawg import BigDawg
        from repro.runtime import PolystoreRuntime

        bd = BigDawg()
        postgres = make_engine()
        bd.add_engine(postgres, islands=["relational"])
        rt = PolystoreRuntime(bd, workers=2, parallelism=2)
        yield rt, postgres
        rt.shutdown()

    def test_knob_reaches_engines_and_shares_credits(self, runtime):
        rt, postgres = runtime
        assert postgres.parallelism == 2
        assert postgres.task_credits is rt.task_credits
        rt.set_relational_parallelism(4)
        assert postgres.parallelism == 4
        rt.set_relational_parallelism("auto")
        assert postgres.parallelism == "auto"
        with pytest.raises(ValueError):
            rt.set_relational_parallelism(0)

    def test_describe_surfaces_parallel_counters(self, runtime):
        rt, postgres = runtime
        rt.execute("SELECT count(*) FROM events")
        postgres.join_memory_budget = 256
        rt.execute(
            "SELECT e.id, u.name FROM events e JOIN users u "
            "ON e.user_id = u.uid ORDER BY e.id LIMIT 5"
        )
        metrics = rt.describe()["metrics"]
        assert metrics["relational_morsels_executed"] > 0
        assert metrics["relational_partitions_spilled"] > 0
        assert metrics["relational_peak_build_bytes"] >= 0

    def test_runtime_results_match_across_parallelism(self, runtime):
        rt, _ = runtime
        codec = BinaryCodec()
        query = JOIN_GROUP_QUERIES[5]
        rt.set_relational_parallelism(1)
        serial = codec.encode(rt.execute(query, use_cache=False))
        rt.set_relational_parallelism(4)
        parallel = codec.encode(rt.execute(query, use_cache=False))
        assert serial == parallel
