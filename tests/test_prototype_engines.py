"""Tests for the prototype engines: TileDB (tiled arrays) and Tupleware (compiled UDFs)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import DuplicateObjectError, ObjectNotFoundError, SchemaError
from repro.engines.tiledb import (
    DenseTile,
    SparseTile,
    TileDBArraySchema,
    TileDBEngine,
    TileExtent,
)
from repro.engines.tupleware import (
    CompiledExecutor,
    InterpretedExecutor,
    TuplewareEngine,
    UdfStatistics,
    Workflow,
)


# -------------------------------------------------------------------- TileDB
class TestTiles:
    def test_extent_validation_and_shape(self):
        extent = TileExtent((0, 0), (9, 4))
        assert extent.shape == (10, 5)
        assert extent.cell_capacity == 50
        assert extent.contains((3, 3)) and not extent.contains((10, 0))
        with pytest.raises(SchemaError):
            TileExtent((5,), (1,))

    def test_dense_tile_read_write_density(self):
        tile = DenseTile(TileExtent((0, 0), (4, 4)))
        tile.write((1, 1), 7.0)
        assert tile.read((1, 1)) == 7.0
        assert tile.read((2, 2)) is None
        assert tile.cell_count == 1
        assert tile.density == pytest.approx(1 / 25)
        with pytest.raises(SchemaError):
            tile.write((9, 9), 1.0)

    def test_sparse_tile_and_densify(self):
        tile = SparseTile(TileExtent((0, 0), (99, 99)))
        tile.write((5, 5), 1.0)
        tile.write((50, 50), 2.0)
        assert tile.is_sparse and tile.cell_count == 2
        dense = tile.to_dense()
        assert dense.read((50, 50)) == 2.0
        assert not dense.is_sparse


class TestTileDBArray:
    def make_schema(self) -> TileDBArraySchema:
        return TileDBArraySchema("m", ((0, 99), (0, 99)), (10, 10), sparse_threshold=0.3)

    def test_schema_validation(self):
        with pytest.raises(SchemaError):
            TileDBArraySchema("m", ((0, 9),), (5, 5))
        with pytest.raises(SchemaError):
            TileDBArraySchema("m", ((9, 0),), (5,))

    def test_sparse_to_dense_promotion(self):
        engine = TileDBEngine()
        array = engine.create_array(self.make_schema())
        # Fill one tile past the density threshold: it should switch representation.
        array.write_block((0, 0), np.ones((6, 6)))
        assert array.representation_switches >= 1
        # A lone cell elsewhere stays sparse.
        array.write((90, 90), 5.0)
        stats = {tuple(s.extent.low): s for s in array.tile_statistics()}
        assert stats[(0, 0)].is_sparse is False
        assert stats[(90, 90)].is_sparse is True

    def test_slice_box_and_matrix(self):
        engine = TileDBEngine()
        array = engine.create_array(self.make_schema())
        array.write_block((10, 10), np.full((5, 5), 3.0))
        box = array.slice_box((10, 10), (14, 14))
        np.testing.assert_allclose(box, np.full((5, 5), 3.0))
        matrix = array.to_matrix()
        assert matrix.shape == (100, 100)
        assert matrix[12, 12] == 3.0 and matrix[0, 0] == 0.0

    def test_out_of_domain_write(self):
        engine = TileDBEngine()
        array = engine.create_array(self.make_schema())
        with pytest.raises(SchemaError):
            array.write((200, 0), 1.0)

    def test_engine_export_import_and_errors(self):
        engine = TileDBEngine()
        array = engine.create_array(self.make_schema())
        array.write_block((0, 0), np.arange(9, dtype=float).reshape(3, 3))
        relation = engine.export_relation("m")
        assert len(relation) == 9
        engine.import_relation("copy", relation)
        assert engine.array("copy").cell_count == 9
        with pytest.raises(DuplicateObjectError):
            engine.create_array(self.make_schema())
        with pytest.raises(ObjectNotFoundError):
            engine.array("missing")


# ------------------------------------------------------------------ Tupleware
class TestWorkflow:
    def test_builder_and_validation(self):
        workflow = (
            Workflow("w")
            .filter(lambda x: x > 0, statistics=UdfStatistics("pos", 5, True, 0.5))
            .map(lambda x: x * 2)
            .reduce(lambda acc, x: acc + x, 0.0)
        )
        workflow.validate()
        assert workflow.total_predicted_cycles == 5
        bad = Workflow("bad").reduce(lambda a, x: a + x).map(lambda x: x)
        with pytest.raises(ValueError):
            bad.validate()


def _standard_workflow() -> Workflow:
    return (
        Workflow("pipeline")
        .filter(lambda x: x > 0.0, lambda a: a > 0.0)
        .map(lambda x: x * 2.0 + 1.0, lambda a: a * 2.0 + 1.0)
        .reduce(lambda acc, x: acc + x, 0.0, lambda a: float(a.sum()))
    )


class TestExecutors:
    def test_compiled_and_interpreted_agree(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=5000)
        workflow = _standard_workflow()
        compiled = CompiledExecutor().execute(workflow, data)
        interpreted = InterpretedExecutor().execute(workflow, data)
        assert compiled.result == pytest.approx(interpreted.result)
        assert compiled.fused and not interpreted.fused
        assert compiled.intermediate_materializations == 0
        assert interpreted.intermediate_materializations == 2

    def test_map_only_workflow_returns_vector(self):
        workflow = Workflow("m").map(lambda x: x + 1, lambda a: a + 1)
        report = CompiledExecutor().execute(workflow, [1.0, 2.0])
        np.testing.assert_allclose(report.result, [2.0, 3.0])

    def test_compiled_falls_back_to_vectorized_scalar_fn(self):
        workflow = Workflow("m").map(lambda x: x * 3.0)  # no vector_fn supplied
        report = CompiledExecutor().execute(workflow, [1.0, 2.0])
        np.testing.assert_allclose(report.result, [3.0, 6.0])

    def test_record_counts(self):
        data = np.array([-1.0, 2.0, 3.0])
        report = CompiledExecutor().execute(_standard_workflow(), data)
        assert report.records_in == 3
        assert report.records_out == 2


class TestTuplewareEngine:
    def test_load_execute_compare(self):
        engine = TuplewareEngine()
        engine.load("d", np.linspace(-1, 1, 101))
        results = engine.compare_strategies(_standard_workflow(), "d")
        assert results["compiled"].result == pytest.approx(results["interpreted"].result)
        with pytest.raises(DuplicateObjectError):
            engine.load("d", [1.0], replace=False)
        with pytest.raises(ObjectNotFoundError):
            engine.dataset("missing")

    def test_export_import_relation(self):
        engine = TuplewareEngine()
        engine.load("d", [1.0, 2.0, 3.0])
        relation = engine.export_relation("d")
        assert relation.schema.names == ["index", "value"]
        engine.import_relation("copy", relation)
        np.testing.assert_allclose(engine.dataset("copy"), [1.0, 2.0, 3.0])


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200))
def test_property_compiled_equals_interpreted(values):
    """Property: the two execution strategies always produce the same answer."""
    data = np.array(values, dtype=float)
    workflow = _standard_workflow()
    compiled = CompiledExecutor().execute(workflow, data)
    interpreted = InterpretedExecutor().execute(workflow, data)
    assert compiled.result == pytest.approx(interpreted.result, rel=1e-9, abs=1e-9)
