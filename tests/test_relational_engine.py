"""Tests for the relational engine: B-tree, storage, SQL parsing, planning, execution."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import (
    ConstraintViolationError,
    ObjectNotFoundError,
    ParseError,
    SchemaError,
)
from repro.common.schema import Schema
from repro.engines.base import EngineCapability
from repro.engines.relational import BTreeIndex, HeapTable, RelationalEngine
from repro.engines.relational.sql.ast import SelectStatement
from repro.engines.relational.sql.parser import parse_sql


# --------------------------------------------------------------------------- B-tree
class TestBTree:
    def test_insert_and_search(self):
        tree = BTreeIndex(order=4)
        for i in range(100):
            tree.insert((i % 10,), i)
        assert sorted(tree.search((3,))) == [3, 13, 23, 33, 43, 53, 63, 73, 83, 93]
        assert tree.search((99,)) == []

    def test_range_scan_ordered(self):
        tree = BTreeIndex(order=4)
        for i in range(200, 0, -1):
            tree.insert((i,), i)
        keys = [k[0] for k, _ in tree.range_scan((50,), (60,))]
        assert keys == list(range(50, 61))
        open_low = [k[0] for k, _ in tree.range_scan(None, (5,))]
        assert open_low == [1, 2, 3, 4, 5]

    def test_range_scan_exclusive_bounds(self):
        tree = BTreeIndex()
        for i in range(10):
            tree.insert((i,), i)
        keys = [k[0] for k, _ in tree.range_scan((2,), (5,), include_low=False, include_high=False)]
        assert keys == [3, 4]

    def test_unique_index_rejects_duplicates(self):
        tree = BTreeIndex(unique=True)
        tree.insert(("a",), 1)
        with pytest.raises(ValueError):
            tree.insert(("a",), 2)

    def test_delete(self):
        tree = BTreeIndex(order=4)
        for i in range(50):
            tree.insert((i,), i)
        assert tree.delete((10,), 10) is True
        assert tree.delete((10,), 10) is False
        assert tree.search((10,)) == []
        assert len(tree) == 49

    def test_height_grows_with_size(self):
        tree = BTreeIndex(order=4)
        assert tree.height() == 1
        for i in range(500):
            tree.insert((i,), i)
        assert tree.height() >= 3
        # Every key is still reachable in order.
        assert [k[0] for k in tree.keys()] == list(range(500))

    def test_order_too_small_rejected(self):
        with pytest.raises(ValueError):
            BTreeIndex(order=2)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=300))
def test_btree_property_sorted_iteration(values):
    """Property: iterating a B+tree yields keys in sorted order, all values present."""
    tree = BTreeIndex(order=8)
    for i, value in enumerate(values):
        tree.insert((value,), i)
    scanned = [key[0] for key, _ in tree.items()]
    assert scanned == sorted(scanned)
    assert len(list(tree.items())) == len(values)


# --------------------------------------------------------------------------- storage
class TestHeapTable:
    def make_table(self) -> HeapTable:
        schema = Schema([("id", "integer", False), ("name", "text"), ("score", "float")])
        return HeapTable("t", schema, primary_key=("id",))

    def test_insert_get_update_delete(self):
        table = self.make_table()
        rid = table.insert([1, "a", 1.5])
        assert table.get(rid) == (1, "a", 1.5)
        table.update(rid, [1, "b", 2.5])
        assert table.get(rid)[1] == "b"
        table.delete(rid)
        with pytest.raises(ObjectNotFoundError):
            table.get(rid)

    def test_primary_key_enforced(self):
        table = self.make_table()
        table.insert([1, "a", 1.0])
        with pytest.raises(ConstraintViolationError):
            table.insert([1, "b", 2.0])

    def test_secondary_index_lookup_and_range(self):
        table = self.make_table()
        table.insert_many([[i, f"n{i}", float(i % 5)] for i in range(1, 51)])
        table.create_index("idx_score", ["score"])
        hits = table.index_lookup("idx_score", 3.0)
        assert all(values[2] == 3.0 for _rid, values in hits)
        ranged = list(table.index_range("idx_score", low=1.0, high=2.0))
        assert all(1.0 <= values[2] <= 2.0 for _rid, values in ranged)

    def test_index_maintained_on_update_and_delete(self):
        table = self.make_table()
        rid = table.insert([1, "a", 5.0])
        table.create_index("idx_score", ["score"])
        table.update(rid, [1, "a", 9.0])
        assert table.index_lookup("idx_score", 5.0) == []
        assert len(table.index_lookup("idx_score", 9.0)) == 1
        table.delete(rid)
        assert table.index_lookup("idx_score", 9.0) == []

    def test_duplicate_index_and_bad_column(self):
        table = self.make_table()
        table.create_index("idx", ["name"])
        with pytest.raises(SchemaError):
            table.create_index("idx", ["name"])
        table.create_index("idx", ["name"], if_not_exists=True)
        with pytest.raises(SchemaError):
            table.create_index("idx2", ["missing"])

    def test_truncate_keeps_indexes(self):
        table = self.make_table()
        table.insert([1, "a", 1.0])
        table.create_index("idx_name", ["name"])
        table.truncate()
        assert len(table) == 0
        assert "idx_name" in table.indexes()


# --------------------------------------------------------------------------- parser
class TestSqlParser:
    def test_select_structure(self):
        stmt = parse_sql(
            "SELECT p.race, count(*) AS n FROM patients p JOIN admissions a ON p.id = a.pid "
            "WHERE p.age > 60 AND a.stay BETWEEN 1 AND 5 GROUP BY p.race HAVING count(*) > 2 "
            "ORDER BY n DESC LIMIT 10 OFFSET 5"
        )
        assert isinstance(stmt, SelectStatement)
        assert stmt.items[1].aggregate == "count"
        assert stmt.from_table.alias == "p"
        assert len(stmt.joins) == 1
        assert stmt.group_by and stmt.having is not None
        assert stmt.order_by[0].descending is True
        assert stmt.limit == 10 and stmt.offset == 5

    def test_select_star_and_distinct(self):
        stmt = parse_sql("SELECT DISTINCT race FROM patients")
        assert stmt.distinct is True
        star = parse_sql("SELECT * FROM patients")
        assert star.items[0].star is True

    def test_subquery_in_from(self):
        stmt = parse_sql("SELECT * FROM (SELECT id FROM patients WHERE age > 60) t WHERE t.id > 1")
        assert stmt.from_table.subquery is not None
        assert stmt.from_table.alias == "t"

    def test_expressions(self):
        stmt = parse_sql(
            "SELECT CASE WHEN age >= 65 THEN 'senior' ELSE 'adult' END AS band, "
            "abs(score) FROM t WHERE name LIKE 'a%' AND id IN (1, 2, 3) AND x IS NOT NULL"
        )
        assert stmt.items[0].alias == "band"
        assert stmt.where is not None

    def test_insert_update_delete_create(self):
        insert = parse_sql("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert len(insert.rows) == 2 and insert.columns == ["a", "b"]
        update = parse_sql("UPDATE t SET a = a + 1 WHERE b = 'x'")
        assert "a" in update.assignments
        delete = parse_sql("DELETE FROM t WHERE a > 5")
        assert delete.where is not None
        create = parse_sql("CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT NOT NULL, v FLOAT)")
        assert create.columns[0].primary_key and not create.columns[1].nullable
        index = parse_sql("CREATE UNIQUE INDEX idx ON t (name)")
        assert index.unique is True
        drop = parse_sql("DROP TABLE IF EXISTS t")
        assert drop.if_exists is True

    def test_parse_errors(self):
        with pytest.raises(ParseError):
            parse_sql("SELEC * FROM t")
        with pytest.raises(ParseError):
            parse_sql("SELECT * FROM t WHERE")
        with pytest.raises(ParseError):
            parse_sql("SELECT 'unterminated FROM t")
        with pytest.raises(ParseError):
            parse_sql("SELECT * FROM t extra garbage )")


# --------------------------------------------------------------------------- engine
@pytest.fixture()
def engine() -> RelationalEngine:
    e = RelationalEngine("pg")
    e.execute("CREATE TABLE patients (id INTEGER PRIMARY KEY, age INTEGER, race TEXT, stay FLOAT)")
    e.execute(
        "INSERT INTO patients VALUES (1, 64, 'white', 3.5), (2, 70, 'black', 7.2), "
        "(3, 55, 'asian', 2.0), (4, 80, 'white', 9.9), (5, 33, 'black', 1.1)"
    )
    e.execute("CREATE TABLE rx (pid INTEGER, drug TEXT, dose FLOAT)")
    e.execute(
        "INSERT INTO rx VALUES (1, 'aspirin', 81), (2, 'heparin', 5), (1, 'heparin', 4), "
        "(4, 'insulin', 10), (9, 'aspirin', 81)"
    )
    return e


class TestRelationalEngine:
    def test_capabilities_and_objects(self, engine):
        assert engine.capabilities & EngineCapability.SQL
        assert set(engine.list_objects()) == {"patients", "rx"}
        assert engine.has_object("PATIENTS")

    def test_filter_and_projection(self, engine):
        result = engine.execute("SELECT id, age FROM patients WHERE age > 60 ORDER BY age")
        assert [r["id"] for r in result] == [1, 2, 4]

    def test_aggregates_and_group_by(self, engine):
        result = engine.execute(
            "SELECT race, count(*) AS n, avg(stay) AS s FROM patients GROUP BY race ORDER BY race"
        )
        by_race = {r["race"]: r for r in result}
        assert by_race["white"]["n"] == 2
        assert by_race["black"]["s"] == pytest.approx((7.2 + 1.1) / 2)

    def test_having_with_alias_and_canonical_name(self, engine):
        result = engine.execute(
            "SELECT race, count(*) AS n FROM patients GROUP BY race HAVING count(*) >= 2"
        )
        assert {r["race"] for r in result} == {"white", "black"}

    def test_global_aggregate_on_empty_result(self, engine):
        result = engine.execute("SELECT count(*), max(age) FROM patients WHERE age > 200")
        assert result.rows[0].values[0] == 0
        assert result.rows[0].values[1] is None

    def test_join_inner_and_left(self, engine):
        inner = engine.execute(
            "SELECT p.id, r.drug FROM patients p JOIN rx r ON p.id = r.pid ORDER BY p.id"
        )
        assert len(inner) == 4
        left = engine.execute(
            "SELECT p.id, r.drug FROM patients p LEFT JOIN rx r ON p.id = r.pid ORDER BY p.id"
        )
        assert len(left) == 6  # four matches plus patients 3 and 5 padded with NULL drug
        missing = [r for r in left if r["drug"] is None]
        assert {r["p.id"] for r in missing} == {3, 5}

    def test_cross_join(self, engine):
        result = engine.execute("SELECT count(*) AS n FROM patients CROSS JOIN rx")
        assert result.rows[0]["n"] == 25

    def test_distinct_order_limit_offset(self, engine):
        result = engine.execute("SELECT DISTINCT race FROM patients ORDER BY race LIMIT 2 OFFSET 1")
        assert [r["race"] for r in result] == ["black", "white"]

    def test_subquery(self, engine):
        result = engine.execute(
            "SELECT count(*) AS n FROM (SELECT id FROM patients WHERE age > 60) t"
        )
        assert result.rows[0]["n"] == 3

    def test_scalar_functions_and_case(self, engine):
        result = engine.execute(
            "SELECT id, CASE WHEN age >= 65 THEN 'senior' ELSE 'adult' END AS band, "
            "round(stay) AS r FROM patients WHERE id = 4"
        )
        assert result.rows[0]["band"] == "senior"
        assert result.rows[0]["r"] == 10

    def test_index_scan_used_for_pk_lookup(self, engine):
        plan = engine.explain("SELECT * FROM patients WHERE id = 3")
        assert "IndexScan" in plan
        result = engine.execute("SELECT age FROM patients WHERE id = 3")
        assert result.rows[0]["age"] == 55

    def test_index_scan_range(self, engine):
        engine.execute("CREATE INDEX idx_age ON patients (age)")
        plan = engine.explain("SELECT * FROM patients WHERE age >= 70")
        assert "IndexScan" in plan
        result = engine.execute("SELECT id FROM patients WHERE age >= 70 ORDER BY id")
        assert [r["id"] for r in result] == [2, 4]

    def test_predicate_pushdown_in_join_plan(self, engine):
        plan = engine.explain(
            "SELECT p.id FROM patients p JOIN rx r ON p.id = r.pid WHERE p.age > 60 AND r.dose > 5"
        )
        # Both single-table predicates must appear below the join (on scans), not above it.
        join_line = next(line for line in plan.splitlines() if "Join" in line)
        assert "age" not in join_line and "dose" not in join_line

    def test_update_and_delete(self, engine):
        affected = engine.execute("UPDATE patients SET stay = stay + 1 WHERE race = 'white'")
        assert affected.rows[0]["affected_rows"] == 2
        assert engine.execute("SELECT stay FROM patients WHERE id = 1").rows[0]["stay"] == 4.5
        deleted = engine.execute("DELETE FROM patients WHERE age < 40")
        assert deleted.rows[0]["affected_rows"] == 1
        assert engine.table_row_count("patients") == 4

    def test_insert_with_column_list_fills_missing_with_null(self, engine):
        engine.execute("INSERT INTO patients (id, age) VALUES (10, 20)")
        row = engine.execute("SELECT * FROM patients WHERE id = 10").rows[0]
        assert row["race"] is None

    def test_primary_key_violation_through_sql(self, engine):
        with pytest.raises(ConstraintViolationError):
            engine.execute("INSERT INTO patients VALUES (1, 1, 'x', 1.0)")

    def test_missing_table_raises(self, engine):
        with pytest.raises(ObjectNotFoundError):
            engine.execute("SELECT * FROM nonexistent")

    def test_export_import_roundtrip(self, engine):
        relation = engine.export_relation("patients")
        other = RelationalEngine("copy")
        other.import_relation("patients", relation, primary_key=("id",))
        assert other.table_row_count("patients") == engine.table_row_count("patients")

    def test_select_without_from(self, engine):
        result = engine.execute("SELECT 1 + 2 AS three")
        assert result.rows[0]["three"] == 3


class TestTransactions:
    def test_commit_persists(self):
        engine = RelationalEngine()
        engine.execute("CREATE TABLE t (id INTEGER, v TEXT)")
        with engine.begin():
            engine.insert_rows("t", [(1, "a"), (2, "b")])
        assert engine.table_row_count("t") == 2

    def test_rollback_on_exception_restores_state(self):
        engine = RelationalEngine()
        engine.execute("CREATE TABLE t (id INTEGER, v TEXT)")
        engine.insert_rows("t", [(1, "a")])
        with pytest.raises(RuntimeError):
            with engine.begin():
                engine.insert_rows("t", [(2, "b")])
                engine.execute("UPDATE t SET v = 'changed' WHERE id = 1")
                raise RuntimeError("boom")
        assert engine.table_row_count("t") == 1
        assert engine.execute("SELECT v FROM t WHERE id = 1").rows[0]["v"] == "a"

    def test_rollback_restores_deletes(self):
        engine = RelationalEngine()
        engine.execute("CREATE TABLE t (id INTEGER, v TEXT)")
        engine.insert_rows("t", [(1, "a"), (2, "b")])
        txn = engine.begin()
        engine.execute("DELETE FROM t WHERE id = 2")
        txn.rollback()
        assert engine.table_row_count("t") == 2

    def test_only_one_active_transaction(self):
        from repro.common.errors import TransactionError

        engine = RelationalEngine()
        engine.begin()
        with pytest.raises(TransactionError):
            engine.begin()
