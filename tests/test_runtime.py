"""Tests for the concurrent polystore runtime: scheduler, admission control,
versioned result cache, runtime metrics, sessions, and the concurrency-safety
fixes that ride along (temp-table scoping, run-time cast elision, full-rank
array cast dimensions)."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.common.errors import CatalogError
from repro.common.schema import Relation, Schema
from repro.core.bigdawg import BigDawg
from repro.core.query.planner import BindingStep, CastStep, IslandQueryStep
from repro.engines.array import ArrayEngine
from repro.engines.keyvalue import KeyValueEngine
from repro.engines.relational import RelationalEngine
from repro.runtime import (
    AdmissionController,
    AdmissionTimeout,
    PolystoreRuntime,
    ResultCache,
    RuntimeMetrics,
)


@pytest.fixture()
def bigdawg() -> BigDawg:
    bd = BigDawg()
    postgres = RelationalEngine("postgres")
    scidb = ArrayEngine("scidb")
    accumulo = KeyValueEngine("accumulo")
    bd.add_engine(postgres, islands=["relational", "myria", "d4m"])
    bd.add_engine(scidb, islands=["array"])
    bd.add_engine(accumulo, islands=["text", "d4m"])
    postgres.execute("CREATE TABLE patients (id INTEGER PRIMARY KEY, age INTEGER)")
    postgres.execute("INSERT INTO patients VALUES (1, 64), (2, 70), (3, 41), (4, 77)")
    scidb.load_numpy("waves", np.arange(12, dtype=float).reshape(3, 4))
    # A second array reserved for CAST traffic, so cast queries do not
    # re-point the catalog entry the array-island reads rely on.
    scidb.load_numpy("wave_copy", np.arange(6, dtype=float).reshape(2, 3))
    accumulo.create_table("notes", text_indexed=True)
    accumulo.put("notes", "p1", "doctor", "n1", "very sick patient")
    accumulo.put("notes", "p2", "doctor", "n1", "recovering well")
    return bd


@pytest.fixture()
def runtime(bigdawg) -> PolystoreRuntime:
    rt = PolystoreRuntime(bigdawg, workers=4)
    yield rt
    rt.shutdown()


# ---------------------------------------------------------------- versioning
class TestWriteVersions:
    def test_import_and_drop_bump_write_version(self):
        engine = RelationalEngine("pg")
        schema = Schema([("id", "integer"), ("v", "float")])
        before = engine.write_version
        engine.import_relation("t", Relation(schema, [[1, 0.5]]))
        assert engine.write_version > before
        mid = engine.write_version
        engine.drop_object("t")
        assert engine.write_version > mid

    def test_native_dml_bumps_write_version(self):
        engine = RelationalEngine("pg")
        engine.execute("CREATE TABLE t (id INTEGER)")
        v1 = engine.write_version
        engine.execute("INSERT INTO t VALUES (1)")
        assert engine.write_version > v1
        v2 = engine.write_version
        engine.execute("SELECT count(*) FROM t")
        assert engine.write_version == v2  # reads do not bump

    def test_array_and_keyvalue_native_mutations_bump(self):
        scidb = ArrayEngine("scidb")
        v0 = scidb.write_version
        scidb.load_numpy("a", np.zeros((2, 2)))
        assert scidb.write_version > v0
        accumulo = KeyValueEngine("acc")
        accumulo.create_table("t")
        v1 = accumulo.write_version
        accumulo.put("t", "r1", "f", "q", 1)
        assert accumulo.write_version > v1

    def test_catalog_version_bumps_on_metadata_mutations(self, bigdawg):
        v0 = bigdawg.catalog.version
        bigdawg.catalog.register_object("waves", "scidb", "array", replace=True)
        v1 = bigdawg.catalog.version
        assert v1 > v0
        bigdawg.catalog.unregister_object("nonexistent")  # no-op: no bump
        assert bigdawg.catalog.version == v1


# ------------------------------------------------------------------ admission
class TestAdmission:
    def test_slots_bound_concurrency(self):
        controller = AdmissionController(slots_per_engine=2, timeout=5.0)
        active, peak = [0], [0]
        lock = threading.Lock()

        def worker():
            with controller.admit(["postgres"]):
                with lock:
                    active[0] += 1
                    peak[0] = max(peak[0], active[0])
                time.sleep(0.02)
                with lock:
                    active[0] -= 1

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert peak[0] <= 2
        assert controller.gate("postgres").admitted == 8

    def test_timeout_raises_admission_timeout(self):
        controller = AdmissionController(slots_per_engine=1, timeout=0.05)
        release = threading.Event()

        def holder():
            with controller.admit(["scidb"]):
                release.wait(2.0)

        thread = threading.Thread(target=holder)
        thread.start()
        time.sleep(0.02)  # let the holder take the only slot
        with pytest.raises(AdmissionTimeout):
            with controller.admit(["scidb"]):
                pass
        assert controller.gate("scidb").timed_out == 1
        release.set()
        thread.join()

    def test_fifo_order(self):
        controller = AdmissionController(slots_per_engine=1, timeout=5.0)
        order: list[int] = []
        started = threading.Event()

        def holder():
            with controller.admit(["e"]):
                started.set()
                time.sleep(0.05)

        def waiter(rank: int):
            with controller.admit(["e"]):
                order.append(rank)

        hold = threading.Thread(target=holder)
        hold.start()
        started.wait()
        waiters = []
        for rank in range(4):
            t = threading.Thread(target=waiter, args=(rank,))
            t.start()
            waiters.append(t)
            time.sleep(0.01)  # stagger arrivals so FIFO order is observable
        hold.join()
        for t in waiters:
            t.join()
        assert order == [0, 1, 2, 3]

    def test_multi_engine_admission_sorted(self):
        controller = AdmissionController(slots_per_engine=1, timeout=1.0)
        # Overlapping engine sets acquired concurrently must not deadlock.
        def worker(engines):
            for _ in range(5):
                with controller.admit(engines):
                    time.sleep(0.001)

        threads = [
            threading.Thread(target=worker, args=(["a", "b"],)),
            threading.Thread(target=worker, args=(["b", "a"],)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert controller.gate("a").admitted == 10


# ---------------------------------------------------------------------- cache
class TestResultCache:
    def test_hit_after_store_and_whitespace_normalization(self, bigdawg):
        cache = ResultCache(bigdawg.catalog)
        result = bigdawg.execute("RELATIONAL(SELECT count(*) AS n FROM patients)")
        fp = cache.fingerprint()
        assert cache.put("RELATIONAL(SELECT count(*) AS n FROM patients)", result, fp)
        hit = cache.get("RELATIONAL(SELECT   count(*) AS n\n FROM patients)")
        assert hit is not None and hit.rows[0]["n"] == 4
        assert cache.hits == 1

    def test_invalidated_by_cast(self, bigdawg):
        cache = ResultCache(bigdawg.catalog)
        result = bigdawg.execute("ARRAY(aggregate(waves, avg(value)))")
        cache.put("q", result, cache.fingerprint())
        bigdawg.cast("wave_copy", "postgres")
        assert cache.get("q") is None
        assert cache.invalidations == 1

    def test_invalidated_by_native_dml(self, bigdawg):
        cache = ResultCache(bigdawg.catalog)
        result = bigdawg.execute("RELATIONAL(SELECT count(*) AS n FROM patients)")
        cache.put("q", result, cache.fingerprint())
        bigdawg.engine("postgres").execute("INSERT INTO patients VALUES (5, 30)")
        assert cache.get("q") is None

    def test_put_refused_when_state_moved(self, bigdawg):
        cache = ResultCache(bigdawg.catalog)
        fp = cache.fingerprint()
        result = bigdawg.execute("RELATIONAL(SELECT count(*) AS n FROM patients)")
        bigdawg.engine("postgres").execute("INSERT INTO patients VALUES (6, 50)")
        assert cache.put("q", result, fp) is False
        assert len(cache) == 0

    def test_normalization_preserves_literal_whitespace(self, bigdawg):
        from repro.runtime.cache import normalize_query

        assert normalize_query("SELECT  a \n FROM t") == "SELECT a FROM t"
        # Whitespace inside string literals is significant: these are
        # different queries and must not share a cache key.
        single = normalize_query('TEXT(SEARCH notes FOR "chest pain")')
        double = normalize_query('TEXT(SEARCH notes FOR "chest  pain")')
        assert single != double

    def test_invalidated_by_transaction_rollback(self, bigdawg):
        cache = ResultCache(bigdawg.catalog)
        engine = bigdawg.engine("postgres")
        txn = engine.begin()
        engine.insert_rows("patients", [[50, 45]])
        result = bigdawg.execute("RELATIONAL(SELECT count(*) AS n FROM patients)")
        cache.put("q", result, cache.fingerprint())
        txn.rollback()
        # The rolled-back insert was visible when the entry was stored.
        assert cache.get("q") is None

    def test_with_query_churn_does_not_invalidate_cache(self, bigdawg):
        cache = ResultCache(bigdawg.catalog)
        with_query = (
            "WITH seniors = RELATIONAL(SELECT id FROM patients WHERE age > 65) "
            "RELATIONAL(SELECT count(*) AS n FROM seniors)"
        )
        bigdawg.execute(with_query)  # warm-up: lazily creates the temp engine
        result = bigdawg.execute("RELATIONAL(SELECT count(*) AS n FROM patients)")
        cache.put("q", result, cache.fingerprint())
        # Temp materialization and retirement are ephemeral churn: the
        # unrelated cached entry must survive a WITH query.
        bigdawg.execute(with_query)
        assert cache.get("q") is not None
        assert bigdawg.catalog.temp_version > 0

    def test_replacing_existing_temp_name_invalidates(self, bigdawg):
        cache = ResultCache(bigdawg.catalog)
        schema = Schema([("id", "integer")])
        bigdawg.materialize_temporary("scratchpad", Relation(schema, [[1]]))
        result = bigdawg.execute("RELATIONAL(SELECT count(*) AS n FROM scratchpad)")
        cache.put("q", result, cache.fingerprint())
        # Re-materializing the *same* name changes visible content.
        bigdawg.materialize_temporary("scratchpad", Relation(schema, [[1], [2]]))
        assert cache.get("q") is None
        bigdawg.drop_temporary("scratchpad")

    def test_lru_eviction(self, bigdawg):
        cache = ResultCache(bigdawg.catalog, capacity=2)
        relation = bigdawg.execute("RELATIONAL(SELECT count(*) AS n FROM patients)")
        fp = cache.fingerprint()
        for key in ("a", "b", "c"):
            cache.put(key, relation, fp)
        assert len(cache) == 2
        assert cache.get("a") is None  # evicted as least recently used
        assert cache.get("c") is not None


# -------------------------------------------------------------------- planner
class TestPlannerConcurrencySupport:
    def test_plan_dependencies_allow_parallel_bindings(self, bigdawg):
        plan = bigdawg.plan(
            "WITH old = RELATIONAL(SELECT id FROM patients WHERE age > 70) "
            "WITH young = RELATIONAL(SELECT id FROM patients WHERE age < 50) "
            "RELATIONAL(SELECT count(*) AS n FROM old)"
        )
        kinds = [type(step) for step in plan.steps]
        assert kinds == [BindingStep, BindingStep, IslandQueryStep]
        deps = plan.step_dependencies()
        # The two bindings are mutually independent; the final query waits.
        assert deps[0] == set() and deps[1] == set()
        assert deps[2] == {0, 1}

    def test_dependent_binding_waits_for_referenced_binding(self, bigdawg):
        plan = bigdawg.plan(
            "WITH old = RELATIONAL(SELECT id, age FROM patients WHERE age > 60) "
            "WITH oldest = RELATIONAL(SELECT id FROM old WHERE age > 75) "
            "RELATIONAL(SELECT count(*) AS n FROM oldest)"
        )
        deps = plan.step_dependencies()
        assert 0 in deps[1]  # `oldest` reads `old`

    def test_with_binding_temporaries_dropped_after_plan(self, bigdawg):
        query = (
            "WITH seniors = RELATIONAL(SELECT id, age FROM patients WHERE age >= 64) "
            "RELATIONAL(SELECT count(*) AS n FROM seniors WHERE age >= 70)"
        )
        for _ in range(3):  # repeated runs must not accumulate state
            result = bigdawg.execute(query)
            assert result.rows[0]["n"] == 2
        leftovers = [o.name for o in bigdawg.catalog.objects() if o.properties.get("temporary")]
        assert leftovers == []
        assert all(
            not name.startswith("seniors")
            for name in bigdawg.engine("postgres").list_objects()
        )

    def test_runtime_cast_elision_on_stale_plan(self, bigdawg):
        query = "RELATIONAL(SELECT count(*) AS n FROM CAST(wave_copy, relational) WHERE value > 1)"
        plan = bigdawg.plan(query)
        assert any(isinstance(step, CastStep) for step in plan.steps)
        # The object moves between planning and execution (e.g. a concurrent
        # plan or an advisor migration): the stale CastStep must become a no-op.
        bigdawg.cast("wave_copy", "postgres")
        casts_before = len(bigdawg.migrator.history)
        result = bigdawg.planner.execute_plan(plan)
        assert result.rows[0]["n"] == 4
        assert len(bigdawg.migrator.history) == casts_before  # no re-migration

    def test_three_dimension_cast_keeps_all_dimensions(self, bigdawg):
        postgres = bigdawg.engine("postgres")
        postgres.execute(
            "CREATE TABLE cube (x INTEGER, y INTEGER, z INTEGER, value FLOAT)"
        )
        postgres.execute(
            "INSERT INTO cube VALUES (0,0,0,1.0), (1,0,1,2.0), (0,1,0,3.0), (1,1,1,4.0)"
        )
        bigdawg.catalog.register_object("cube", "postgres", "table", replace=True)
        result = bigdawg.execute("ARRAY(aggregate(CAST(cube, array), avg(value)))")
        assert float(result.rows[0].values[0]) == pytest.approx(2.5)
        stored = bigdawg.engine("scidb").array("cube")
        # Regression: dims used to be truncated to the first two columns.
        assert [d.name for d in stored.schema.dimensions] == ["x", "y", "z"]


# -------------------------------------------------------------------- runtime
class TestPolystoreRuntime:
    MIXED = [
        "RELATIONAL(SELECT count(*) AS n FROM patients WHERE age > 60)",
        "ARRAY(aggregate(waves, avg(value)))",
        'TEXT(SEARCH notes FOR "very sick")',
        "RELATIONAL(SELECT avg(age) AS a FROM patients)",
    ]

    def test_results_match_serial_execution(self, bigdawg, runtime):
        serial = [bigdawg.execute(q).to_dicts() for q in self.MIXED]
        concurrent = [r.to_dicts() for r in runtime.execute_many(self.MIXED * 3)]
        assert concurrent == (serial * 3)

    def test_repeated_query_hits_cache(self, bigdawg, runtime):
        query = self.MIXED[0]
        runtime.execute(query)
        runtime.execute(query)
        assert runtime.cache.hits >= 1
        assert runtime.metrics.cache_hits >= 1
        # Native DML invalidates: the third run recomputes.
        bigdawg.engine("postgres").execute("INSERT INTO patients VALUES (9, 90)")
        result = runtime.execute(query)
        assert result.rows[0]["n"] == 4  # now four patients over 60

    def test_mutating_query_is_not_cached(self, bigdawg, runtime):
        runtime.execute("RELATIONAL(INSERT INTO patients VALUES (10, 55))")
        assert len(runtime.cache) == 0

    def test_with_query_temporaries_scoped_per_execution(self, bigdawg, runtime):
        query = (
            "WITH seniors = RELATIONAL(SELECT id, age FROM patients WHERE age >= 64) "
            "RELATIONAL(SELECT count(*) AS n FROM seniors WHERE age >= 70)"
        )
        results = runtime.execute_many([query] * 6)
        assert all(r.rows[0]["n"] == 2 for r in results)
        leftovers = [o.name for o in bigdawg.catalog.objects() if o.properties.get("temporary")]
        assert leftovers == []

    def test_runtime_feeds_execution_monitor(self, bigdawg, runtime):
        runtime.execute(self.MIXED[0], use_cache=False)
        runtime.execute(self.MIXED[1], use_cache=False)
        classes = {o.query_class for o in bigdawg.monitor.observations}
        assert "runtime_relational" in classes
        assert "runtime_array" in classes

    def test_metrics_snapshot(self, runtime):
        runtime.execute_many(self.MIXED)
        snap = runtime.metrics.snapshot(queue_depth=runtime.admission.queue_depth())
        assert snap["completed"] == 4
        assert snap["failed"] == 0
        assert snap["latency_p50_s"] is not None
        assert snap["latency_p95_s"] >= snap["latency_p50_s"]
        assert snap["queue_depth"] == 0
        assert runtime.metrics.throughput() > 0

    def test_failed_query_counted_and_raised(self, runtime):
        with pytest.raises(Exception):
            runtime.execute("RELATIONAL(SELECT * FROM no_such_table)")
        assert runtime.metrics.failed == 1

    def test_session_scoped_temporaries(self, bigdawg, runtime):
        schema = Schema([("id", "integer")])
        with runtime.session() as session:
            physical = session.materialize("scratch", Relation(schema, [[1], [2]]))
            result = session.execute(
                f"RELATIONAL(SELECT count(*) AS n FROM {physical})"
            )
            assert result.rows[0]["n"] == 2
            assert session.queries_submitted == 1
        assert not bigdawg.catalog.has_object(physical)
        with pytest.raises(RuntimeError):
            session.execute("RELATIONAL(SELECT 1)")

    def test_drop_temporary_refuses_persistent_objects(self, bigdawg):
        with pytest.raises(CatalogError):
            bigdawg.drop_temporary("patients")
        assert bigdawg.catalog.has_object("patients")

    def test_runtime_accessor_is_lazy_singleton(self, bigdawg):
        rt = bigdawg.runtime(workers=2)
        assert bigdawg.runtime() is rt
        rt.shutdown()

    def test_sessions_unique_across_runtimes(self, bigdawg):
        with PolystoreRuntime(bigdawg, workers=1) as rt1, \
                PolystoreRuntime(bigdawg, workers=1) as rt2:
            with rt1.session() as s1, rt2.session() as s2:
                # Distinct ids even across runtimes, so session temp names
                # (name__s<id>) can never collide on the shared temp engine.
                assert s1.id != s2.id
                schema = Schema([("id", "integer")])
                p1 = s1.materialize("tmp", Relation(schema, [[1]]))
                p2 = s2.materialize("tmp", Relation(schema, [[1], [2]]))
                assert p1 != p2
                assert s1.execute(
                    f"RELATIONAL(SELECT count(*) AS n FROM {p1})"
                ).rows[0]["n"] == 1
                assert s2.execute(
                    f"RELATIONAL(SELECT count(*) AS n FROM {p2})"
                ).rows[0]["n"] == 2


# --------------------------------------------------------------------- stress
class TestConcurrencyStress:
    def test_mixed_reads_casts_and_with_queries(self, bigdawg):
        """N threads of mixed traffic: results must match serial execution,
        catalog updates must not be lost, and the cache must be invalidated
        by every mutation."""
        reads = [
            "RELATIONAL(SELECT count(*) AS n FROM patients WHERE age > 60)",
            "ARRAY(aggregate(waves, avg(value)))",
            'TEXT(SEARCH notes FOR "very sick")',
            (
                "WITH seniors = RELATIONAL(SELECT id, age FROM patients WHERE age >= 64) "
                "RELATIONAL(SELECT count(*) AS n FROM seniors WHERE age >= 70)"
            ),
        ]
        expected = [bigdawg.execute(q).to_dicts() for q in reads]
        cast_query = (
            "RELATIONAL(SELECT count(*) AS n FROM CAST(wave_copy, relational) WHERE value >= 0)"
        )
        expected_cast = {"n": 6}
        with PolystoreRuntime(bigdawg, workers=8) as runtime:
            futures = []
            for round_index in range(6):
                for query in reads:
                    futures.append((query, runtime.submit(query)))
                futures.append((cast_query, runtime.submit(cast_query)))
            outcomes = [(query, future.result()) for query, future in futures]
        for query, result in outcomes:
            if query == cast_query:
                assert result.to_dicts() == [expected_cast]
            else:
                assert result.to_dicts() == expected[reads.index(query)]
        # No lost catalog updates: every object is still locatable.
        for name in ("patients", "waves", "notes", "wave_copy"):
            assert bigdawg.catalog.has_object(name)
        # No temp leaks from the concurrent WITH executions.
        assert [o.name for o in bigdawg.catalog.objects() if o.properties.get("temporary")] == []
        # The object was cast exactly once; later plans skipped or elided it.
        casts = [r for r in bigdawg.migrator.history if r.object_name == "wave_copy"]
        assert len(casts) == 1

    def test_cache_invalidation_under_writer_thread(self, bigdawg):
        """A writer mutating the relational engine concurrently with readers:
        every served result must reflect a state at least as fresh as the
        last write that preceded its fingerprint check."""
        query = "RELATIONAL(SELECT count(*) AS n FROM patients)"
        stop = threading.Event()
        inserted = [0]

        def writer():
            next_id = 100
            while not stop.is_set():
                bigdawg.engine("postgres").execute(
                    f"INSERT INTO patients VALUES ({next_id}, 20)"
                )
                inserted[0] += 1
                next_id += 1
                time.sleep(0.002)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            with PolystoreRuntime(bigdawg, workers=4) as runtime:
                counts = [r.rows[0]["n"] for r in runtime.execute_many([query] * 40)]
        finally:
            stop.set()
            thread.join()
        # Counts are monotone in time but arrive unordered; the set of values
        # must stay within what the writer produced.
        assert all(4 <= count <= 4 + inserted[0] for count in counts)
        final = bigdawg.execute(query).rows[0]["n"]
        assert final == 4 + inserted[0]  # no lost inserts
