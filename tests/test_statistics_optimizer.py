"""Tests for the statistics layer, the optimizer pass and the streaming
group-by: projection pushdown correctness, byte-based build sides,
selectivity-ordered conjuncts, bounded-memory grouped aggregation, the
soft-keyword lexer/parser changes and the cross-island join SQL generation.
"""

from __future__ import annotations

import pytest

from repro.common.errors import ParseError, PlanningError
from repro.common.serialization import BinaryCodec
from repro.engines.relational import RelationalEngine
from repro.engines.relational.statistics import StatisticsCatalog
from repro.engines.relational.vectorized import DEFAULT_BATCH_ROWS


WIDE_COLUMNS = 30  # extra payload columns beyond id/k/grp/val


def fill_engine(engine: RelationalEngine, rows: int = 2000) -> RelationalEngine:
    """Two joinable tables: a wide fact table and a narrow dimension."""
    payload = ", ".join(f"c{i} INTEGER" for i in range(WIDE_COLUMNS))
    engine.execute(
        f"CREATE TABLE wide (id INTEGER PRIMARY KEY, k INTEGER, grp TEXT, "
        f"val FLOAT, {payload})"
    )
    engine.insert_rows(
        "wide",
        [
            (
                i,
                i % 40,
                None if i % 13 == 0 else f"g{i % 5}",
                None if i % 11 == 0 else (i % 97) / 3.0,
                *[(i + j) % 20 for j in range(WIDE_COLUMNS)],
            )
            for i in range(rows)
        ],
    )
    engine.execute("CREATE TABLE dim (k INTEGER, label TEXT, weight FLOAT)")
    engine.insert_rows(
        "dim", [(k, f"label_{k % 6}", k * 1.5) for k in range(30)] + [(None, "nul", 0.0)]
    )
    return engine


@pytest.fixture(scope="module")
def engines():
    return (
        fill_engine(RelationalEngine("vec", execution_mode="vectorized")),
        fill_engine(RelationalEngine("row", execution_mode="row")),
        fill_engine(RelationalEngine("plain", execution_mode="vectorized")),
    )


# ------------------------------------------------------------------ statistics
class TestStatistics:
    def test_column_statistics_basics(self):
        engine = RelationalEngine("s")
        engine.execute("CREATE TABLE t (a INTEGER, b TEXT, c FLOAT)")
        engine.insert_rows(
            "t",
            [(1, "xx", 0.5), (2, "yyyy", 1.5), (2, None, 2.5), (3, "xx", None)],
        )
        stats = engine.table_stats("t")
        assert stats.row_count == 4
        a = stats.column("a")
        assert a.ndv == 3 and a.minimum == 1 and a.maximum == 3
        b = stats.column("b")
        assert b.null_fraction == pytest.approx(0.25)
        assert b.ndv == 2
        c = stats.column("c")
        assert c.null_fraction == pytest.approx(0.25)
        assert stats.avg_row_width > 8  # integer + text + float

    def test_qualified_column_lookup(self):
        engine = RelationalEngine("s")
        engine.execute("CREATE TABLE t (a INTEGER)")
        engine.insert_rows("t", [(1,)])
        stats = engine.table_stats("t")
        assert stats.column("t.a") is stats.column("a")

    def test_row_count_tracks_without_reanalyze(self):
        engine = RelationalEngine("s")
        engine.execute("CREATE TABLE t (a INTEGER)")
        engine.insert_rows("t", [(i,) for i in range(1000)])
        first = engine.table_stats("t")
        assert first.row_count == 1000
        # A small insert updates the cheap counter but keeps the analyzed
        # column statistics (NDV unchanged even though new values arrived).
        engine.insert_rows("t", [(5000 + i,) for i in range(10)])
        second = engine.table_stats("t")
        assert second.row_count == 1010
        assert second is first  # cached snapshot, row count patched live

    def test_heavy_churn_triggers_reanalyze(self):
        engine = RelationalEngine("s")
        engine.execute("CREATE TABLE t (a INTEGER)")
        engine.insert_rows("t", [(i,) for i in range(100)])
        first = engine.table_stats("t")
        engine.insert_rows("t", [(1000 + i,) for i in range(500)])
        second = engine.table_stats("t")
        assert second is not first
        assert second.column("a").maximum == 1499

    def test_missing_table_yields_none(self):
        engine = RelationalEngine("s")
        assert engine.table_stats("nope") is None

    def test_invalidate_on_drop_and_replace(self):
        engine = RelationalEngine("s")
        engine.execute("CREATE TABLE t (a INTEGER)")
        engine.insert_rows("t", [(1,)])
        assert engine.table_stats("t") is not None
        engine.execute("DROP TABLE t")
        assert engine.table_stats("t") is None

    def test_analyze_sampling_is_bounded(self, monkeypatch):
        import repro.engines.relational.statistics as stats_mod

        monkeypatch.setattr(stats_mod, "ANALYZE_SAMPLE_ROWS", 100)
        engine = RelationalEngine("s")
        engine.execute("CREATE TABLE t (a INTEGER)")
        engine.insert_rows("t", [(i,) for i in range(1000)])
        catalog = StatisticsCatalog(engine)
        stats = catalog.analyze("t")
        # Unique-in-sample columns scale back up to the full row count.
        assert stats.column("a").ndv == 1000
        assert stats.row_count == 1000


# ------------------------------------------------------------------- optimizer
class TestProjectionPushdown:
    def test_explain_shows_pruned_columns_and_stats(self, engines):
        vec, _row, _plain = engines
        plan = vec.explain(
            "SELECT d.label, sum(w.val) AS s FROM wide w JOIN dim d ON w.k = d.k "
            "GROUP BY d.label"
        )
        assert "Stats(wide: rows=2000" in plan
        assert "[pruned:" in plan
        # The wide side keeps only the join key and the aggregated column.
        assert "Project(w.k, w.val)" in plan or "Project(w.val, w.k)" in plan

    def test_select_star_disables_pruning(self, engines):
        vec, _row, _plain = engines
        plan = vec.explain("SELECT * FROM wide w JOIN dim d ON w.k = d.k")
        assert "[pruned:" not in plan

    def test_pruning_blocked_on_outer_join_non_preserved_side(self, engines):
        vec, _row, _plain = engines
        # LEFT JOIN: the right (non-preserved) side must not be narrowed,
        # mirroring the WHERE-pushdown boundary; the left side may be.
        plan = vec.explain("SELECT w.id FROM wide w LEFT JOIN dim d ON w.k = d.k")
        lines = plan.splitlines()
        join_depth = next(
            line.index("Hash") // 2 for line in lines if "HashJoin" in line
        )
        below_join = [line for line in lines if line.startswith("  " * (join_depth + 1))]
        right_side = below_join[-1]
        assert "SeqScan(dim" in right_side and "[pruned:" not in right_side
        assert any("[pruned:" in line for line in below_join)
        # FULL OUTER: neither side prunable.
        plan = vec.explain(
            "SELECT w.id FROM wide w FULL OUTER JOIN dim d ON w.k = d.k"
        )
        assert "[pruned:" not in plan

    def test_counts_pruned_columns(self, engines):
        vec, _row, _plain = engines
        before = vec.columns_pruned
        vec.execute("SELECT d.label FROM wide w JOIN dim d ON w.k = d.k LIMIT 1")
        assert vec.columns_pruned > before

    def test_parity_wide_join_grid(self, engines):
        vec, row, plain = engines
        plain.optimizer_enabled = False
        queries = [
            "SELECT w.id, d.label FROM wide w JOIN dim d ON w.k = d.k ORDER BY w.id LIMIT 50",
            "SELECT * FROM wide w JOIN dim d ON w.k = d.k ORDER BY w.id LIMIT 25",
            "SELECT w.id, w.c7, d.weight FROM wide w LEFT JOIN dim d ON w.k = d.k ORDER BY w.id LIMIT 40",
            "SELECT w.id, d.k FROM wide w RIGHT JOIN dim d ON w.k = d.k ORDER BY d.k, w.id LIMIT 40",
            "SELECT w.grp, count(*) AS n, sum(w.val) AS s FROM wide w GROUP BY w.grp",
            "SELECT d.label, count(*) AS n, avg(w.val) AS a FROM wide w JOIN dim d ON w.k = d.k "
            "GROUP BY d.label ORDER BY d.label",
            "SELECT count(*) AS n FROM wide w JOIN dim d ON w.k = d.k AND w.c0 < d.weight",
            "SELECT w.grp, w.c1, min(w.val) AS lo, max(w.c2) AS hi FROM wide w "
            "GROUP BY w.grp, w.c1 ORDER BY w.grp, w.c1",
        ]
        codec = BinaryCodec()
        for query in queries:
            expected = codec.encode(row.execute(query))
            assert codec.encode(vec.execute(query)) == expected, query
            assert codec.encode(plain.execute(query)) == expected, query


class TestCostDecisions:
    @pytest.fixture()
    def sized(self):
        engine = RelationalEngine("cost")
        engine.execute("CREATE TABLE narrow (k INTEGER, v INTEGER)")
        engine.insert_rows("narrow", [(i % 50, i) for i in range(3000)])
        engine.execute(
            "CREATE TABLE fat (k INTEGER, t0 TEXT, t1 TEXT, t2 TEXT, t3 TEXT)"
        )
        filler = "x" * 60
        engine.insert_rows(
            "fat", [(i % 50, filler, filler, filler, filler) for i in range(1000)]
        )
        return engine

    def test_build_side_from_bytes_not_rows(self, sized):
        # fat has fewer rows but far more bytes; SELECT * keeps it wide, so
        # the byte-based choice builds on narrow (left) where the row-count
        # heuristic would have built on fat (right).
        plan = sized.explain("SELECT * FROM narrow n JOIN fat f ON n.k = f.k")
        assert "build=left" in plan
        sized.optimizer_enabled = False
        try:
            plan = sized.explain("SELECT * FROM narrow n JOIN fat f ON n.k = f.k")
            assert "build=right" in plan
        finally:
            sized.optimizer_enabled = True

    def test_conjunct_order_by_selectivity(self):
        engine = RelationalEngine("sel")
        engine.execute("CREATE TABLE t (id INTEGER, flag INTEGER)")
        engine.insert_rows("t", [(i, i % 2) for i in range(1000)])
        plan = engine.explain("SELECT id FROM t WHERE flag = 1 AND id = 5")
        # id=5 keeps ~1/1000 rows, flag=1 keeps ~1/2: the equality on the
        # high-NDV column runs first.
        assert "filter=((id = 5) AND (flag = 1))" in plan

    def test_type_mismatched_comparison_never_reordered(self):
        # 'a < 5' over a TEXT column raises TypeError on the row path; the
        # optimizer must not move a selective conjunct ahead of it (which
        # would short-circuit the error away for non-matching rows).
        import pytest as _pytest

        vec = RelationalEngine("mix", execution_mode="vectorized")
        row = RelationalEngine("mix2", execution_mode="row")
        for engine in (vec, row):
            engine.execute("CREATE TABLE t (a TEXT, b INTEGER)")
            engine.insert_rows("t", [(f"s{i}", i) for i in range(200)])
        query = "SELECT a FROM t WHERE a < 5 AND b = 199"
        with _pytest.raises(TypeError):
            row.execute(query)
        with _pytest.raises(TypeError):
            vec.execute(query)
        # Same-family comparisons still reorder.
        plan = vec.explain("SELECT a FROM t WHERE a > 'zz' AND b = 7")
        assert "filter=((b = 7) AND (a > 'zz'))" in plan

    def test_unsafe_conjuncts_keep_order_and_semantics(self):
        vec = RelationalEngine("div", execution_mode="vectorized")
        row = RelationalEngine("div2", execution_mode="row")
        for engine in (vec, row):
            engine.execute("CREATE TABLE t (a FLOAT, b FLOAT)")
            engine.insert_rows(
                "t", [(10.0, 0.0), (10.0, 2.0), (4.0, 4.0), (9.0, 3.0)]
            )
        query = "SELECT a FROM t WHERE b != 0 AND a / b > 2 ORDER BY a"
        assert [r.values for r in vec.execute(query).rows] == [
            r.values for r in row.execute(query).rows
        ]
        plan = vec.explain(query)
        assert "filter=((b != 0) AND ((a / b) > 2))" in plan


# ------------------------------------------------------------ streaming group-by
class TestStreamingGroupBy:
    def make_pair(self, rows):
        vec = RelationalEngine("gv", execution_mode="vectorized")
        row = RelationalEngine("gr", execution_mode="row")
        for engine in (vec, row):
            engine.execute(
                "CREATE TABLE facts (id INTEGER PRIMARY KEY, g INTEGER, "
                "s TEXT, v FLOAT, big INTEGER)"
            )
            engine.insert_rows("facts", rows)
        return vec, row

    @staticmethod
    def default_rows(n=20_000, groups=100):
        return [
            (
                i,
                i % groups,
                None if i % 7 == 0 else f"s{i % 11}",
                None if i % 13 == 0 else (i % 89) / 7.0,
                i % 1000,
            )
            for i in range(n)
        ]

    def test_streaming_bounds_peak_resident_rows(self):
        groups = 100
        vec, row = self.make_pair(self.default_rows(20_000, groups))
        query = (
            "SELECT g, count(*) AS n, sum(v) AS s, avg(v) AS a, min(v) AS lo, "
            "max(big) AS hi FROM facts GROUP BY g"
        )
        codec = BinaryCodec()
        assert codec.encode(vec.execute(query)) == codec.encode(row.execute(query))
        assert vec.groupby_paths.get("stream", 0) == 1
        assert vec.peak_groupby_resident_rows <= DEFAULT_BATCH_ROWS + groups
        assert vec.peak_groupby_resident_rows < 20_000

    def test_block_path_when_streaming_disabled(self):
        vec, row = self.make_pair(self.default_rows(10_000))
        vec.streaming_groupby = False
        query = "SELECT g, sum(v) AS s FROM facts GROUP BY g"
        codec = BinaryCodec()
        assert codec.encode(vec.execute(query)) == codec.encode(row.execute(query))
        assert vec.groupby_paths.get("block", 0) == 1
        assert vec.peak_groupby_resident_rows == 10_000

    def test_null_heavy_and_text_keys_parity(self):
        rows = [
            (
                i,
                None if i % 3 == 0 else i % 5,
                None if i % 2 == 0 else f"k{i % 4}",
                None if i % 4 == 1 else float(i % 17),
                i,
            )
            for i in range(9000)
        ]
        vec, row = self.make_pair(rows)
        codec = BinaryCodec()
        for query in [
            "SELECT g, s, count(*) AS n, sum(v) AS t FROM facts GROUP BY g, s",
            "SELECT s, avg(v) AS a, min(v) AS lo, max(v) AS hi, count(v) AS c "
            "FROM facts GROUP BY s",
        ]:
            assert codec.encode(vec.execute(query)) == codec.encode(
                row.execute(query)
            ), query

    def test_int_overflow_mid_stream_degrades_exactly(self):
        # Early batches accumulate vectorized; a late huge value (beyond
        # int64) trips the guard and the partial state hands over to the
        # row accumulators — the total must still be exact.
        rows = [(i, i % 3, "x", 1.0, 2**61) for i in range(10_000)]
        rows[9_500] = (9_500, 9_500 % 3, "x", 1.0, 10**19)
        vec, row = self.make_pair(rows)
        query = "SELECT g, sum(big) AS s FROM facts GROUP BY g ORDER BY g"
        expected = [r.values for r in row.execute(query).rows]
        assert [r.values for r in vec.execute(query).rows] == expected
        assert vec.groupby_paths.get("stream_degraded", 0) == 1

    def test_nan_minmax_mid_stream_degrades(self):
        rows = [(i, i % 4, "x", float(i % 50), i) for i in range(10_000)]
        rows[9_000] = (9_000, 0, "x", float("nan"), 9_000)
        vec, row = self.make_pair(rows)
        query = "SELECT g, min(v) AS lo, max(v) AS hi, count(*) AS n FROM facts GROUP BY g"
        codec = BinaryCodec()
        assert codec.encode(vec.execute(query)) == codec.encode(row.execute(query))
        assert vec.groupby_paths.get("stream_degraded", 0) == 1

    def test_nan_group_key_mid_stream_degrades(self):
        rows = [(i, i % 4, "x", float(i % 6), i) for i in range(9_000)]
        rows[8_500] = (8_500, 1, "x", float("nan"), 8_500)
        vec, row = self.make_pair(rows)
        query = "SELECT v, count(*) AS n FROM facts GROUP BY v"
        codec = BinaryCodec()
        assert codec.encode(vec.execute(query)) == codec.encode(row.execute(query))

    def test_empty_input_group_by(self):
        vec, row = self.make_pair([])
        query = "SELECT g, count(*) AS n FROM facts GROUP BY g"
        assert [r.values for r in vec.execute(query).rows] == []
        assert [r.values for r in row.execute(query).rows] == []


# ------------------------------------------------------------- lexer / parser
class TestSoftKeywordsAndQuoting:
    def test_columns_named_right_and_full(self):
        engine = RelationalEngine("kw")
        engine.execute(
            "CREATE TABLE opts (id INTEGER PRIMARY KEY, right INTEGER, full FLOAT)"
        )
        engine.execute("INSERT INTO opts VALUES (1, 10, 0.5), (2, 20, 1.5)")
        result = engine.execute("SELECT right, full FROM opts WHERE right > 15")
        assert result.schema.names == ["right", "full"]
        assert [r.values for r in result.rows] == [(20, 1.5)]
        engine.execute("UPDATE opts SET right = 99, full = 9.0 WHERE id = 1")
        assert engine.execute(
            "SELECT right FROM opts WHERE id = 1"
        ).rows[0].values == (99,)

    def test_double_quoted_identifiers(self):
        engine = RelationalEngine("kw")
        engine.execute('CREATE TABLE t (id INTEGER, "left" TEXT, "order" INTEGER)')
        engine.execute("INSERT INTO t VALUES (1, 'a', 7)")
        result = engine.execute('SELECT "left", "order" FROM t ORDER BY "order"')
        assert result.schema.names == ["left", "order"]
        assert [r.values for r in result.rows] == [("a", 7)]

    def test_right_and_full_joins_still_parse(self):
        engine = RelationalEngine("kw")
        engine.execute("CREATE TABLE a (k INTEGER, v INTEGER)")
        engine.execute("CREATE TABLE b (k INTEGER, w INTEGER)")
        engine.execute("INSERT INTO a VALUES (1, 10), (2, 20)")
        engine.execute("INSERT INTO b VALUES (2, 200), (3, 300)")
        right = engine.execute(
            "SELECT a.k, b.w FROM a RIGHT OUTER JOIN b ON a.k = b.k ORDER BY b.k"
        )
        assert [r.values for r in right.rows] == [(2, 200), (None, 300)]
        full = engine.execute(
            "SELECT a.k, b.k FROM a FULL JOIN b ON a.k = b.k"
        )
        assert len(full.rows) == 3

    def test_soft_keyword_column_in_join_condition(self):
        engine = RelationalEngine("kw")
        engine.execute("CREATE TABLE l (right INTEGER, v INTEGER)")
        engine.execute("CREATE TABLE r (full INTEGER, w INTEGER)")
        engine.execute("INSERT INTO l VALUES (1, 10)")
        engine.execute("INSERT INTO r VALUES (1, 100)")
        result = engine.execute(
            "SELECT l.v, r.w FROM l JOIN r ON l.right = r.full"
        )
        assert [x.values for x in result.rows] == [(10, 100)]

    def test_quoted_soft_keyword_is_an_alias_not_a_join(self):
        engine = RelationalEngine("kw")
        engine.execute("CREATE TABLE a (k INTEGER, v INTEGER)")
        engine.execute("CREATE TABLE b (k INTEGER, w INTEGER)")
        engine.execute("INSERT INTO a VALUES (1, 10)")
        engine.execute("INSERT INTO b VALUES (1, 100), (3, 300)")
        # Quoting forces identifier treatment: "right" aliases a, and the
        # JOIN is a plain inner join — not a RIGHT OUTER JOIN.
        quoted = engine.execute(
            'SELECT right.v, b.w FROM a "right" JOIN b ON right.k = b.k'
        )
        assert [r.values for r in quoted.rows] == [(10, 100)]
        # The unquoted spelling is the outer join.
        outer = engine.execute(
            "SELECT a.v, b.w FROM a RIGHT JOIN b ON a.k = b.k ORDER BY b.k"
        )
        assert [r.values for r in outer.rows] == [(10, 100), (None, 300)]

    def test_soft_join_after_subquery(self):
        engine = RelationalEngine("kw")
        engine.execute("CREATE TABLE a (x INTEGER)")
        engine.execute("CREATE TABLE b (x INTEGER)")
        engine.execute("INSERT INTO a VALUES (1), (2)")
        engine.execute("INSERT INTO b VALUES (2), (3)")
        # RIGHT after a derived table opens the join, it is not its alias.
        result = engine.execute(
            "SELECT b.x FROM (SELECT x FROM a) s RIGHT JOIN b ON s.x = b.x "
            "ORDER BY b.x"
        )
        assert [r.values for r in result.rows] == [(2,), (3,)]
        unaliased = engine.execute(
            "SELECT b.x FROM (SELECT x FROM a) FULL JOIN b ON x = b.x"
        )
        assert len(unaliased.rows) == 3
        # An explicit AS still lets the soft keyword be the alias.
        aliased = engine.execute(
            'SELECT right.x FROM (SELECT x FROM a) AS right JOIN b ON right.x = b.x'
        )
        assert [r.values for r in aliased.rows] == [(2,)]

    def test_qualified_quoted_identifiers(self):
        engine = RelationalEngine("kw")
        engine.execute('CREATE TABLE t (id INTEGER, "left" TEXT)')
        engine.execute("INSERT INTO t VALUES (1, 'a')")
        assert [r.values for r in engine.execute('SELECT t."left" FROM t').rows] == [
            ("a",)
        ]
        assert [
            r.values for r in engine.execute('SELECT "t"."left" FROM t').rows
        ] == [("a",)]
        joined = engine.execute(
            'SELECT u."left" FROM t u JOIN t v ON u.id = v.id'
        )
        assert [r.values for r in joined.rows] == [("a",)]

    def test_unterminated_quoted_identifier(self):
        from repro.engines.relational.sql.lexer import tokenize

        with pytest.raises(ParseError):
            tokenize('SELECT "broken FROM t')


# ------------------------------------------------------- cross-island planning
class TestCrossIslandJoins:
    @pytest.fixture()
    def bigdawg(self):
        import numpy as np

        from repro.core.bigdawg import BigDawg
        from repro.engines.array import ArrayEngine

        bd = BigDawg()
        postgres = RelationalEngine("postgres")
        scidb = ArrayEngine("scidb")
        bd.add_engine(postgres, islands=["relational", "myria"])
        bd.add_engine(scidb, islands=["array"])  # not relational: CAST needed
        postgres.execute("CREATE TABLE patients (id INTEGER PRIMARY KEY, age INTEGER)")
        postgres.execute("INSERT INTO patients VALUES (0, 64), (1, 70), (5, 41)")
        scidb.load_numpy("waves", np.arange(4, dtype=float).reshape(2, 2))
        return bd

    def test_join_query_emits_right_outer_and_cast(self, bigdawg):
        query = bigdawg.planner.join_query(
            "patients", "waves", on=("patients.id", "waves.i"), join_type="right"
        )
        assert "RIGHT OUTER JOIN" in query
        assert "CAST(waves, relational)" in query
        assert "CAST(patients" not in query

    def test_execute_right_join_cross_island(self, bigdawg):
        from repro.core.query.planner import CastStep

        plan = bigdawg.planner.plan_join(
            "patients",
            "waves",
            on=("patients.id", "waves.i"),
            join_type="right",
            columns=["patients.age", "waves.i", "waves.j", "waves.value"],
        )
        assert any(isinstance(step, CastStep) for step in plan.steps)
        result = bigdawg.planner.execute_plan(plan)
        # Every wave cell survives (RIGHT join); ages pad where unmatched.
        assert len(result.rows) == 4
        ages = {row["age"] for row in result.rows}
        assert ages == {64, 70}  # i in {0, 1} both match patients

    def test_execute_full_join_cross_island(self, bigdawg):
        result = bigdawg.planner.execute_join(
            "patients",
            "waves",
            on=("patients.id", "waves.i"),
            join_type="full",
            columns=["patients.id", "waves.value"],
        )
        # 4 wave cells (i in {0,1}, two matches each... ) plus patient 5 unmatched.
        ids = [row["id"] for row in result.rows]
        assert 5 in ids
        assert len(result.rows) == 5

    def test_render_join_sql_validation(self):
        from repro.core.query.planner import render_join_sql

        with pytest.raises(PlanningError):
            render_join_sql("a", "b", on=None, join_type="inner")
        with pytest.raises(PlanningError):
            render_join_sql("a", "b", on="a.x = b.x", join_type="cross")
        with pytest.raises(PlanningError):
            render_join_sql("a", "b", on="a.x = b.x", join_type="sideways")
        sql = render_join_sql(
            "a", "b", on=("a.x", "b.x"), join_type="full",
            columns=["a.x"], where="a.x > 1",
        )
        assert sql == "SELECT a.x FROM a FULL OUTER JOIN b ON a.x = b.x WHERE a.x > 1"


# ------------------------------------------------------------- runtime metrics
class TestRuntimeMetrics:
    def test_snapshot_reports_pruning_and_groupby_paths(self):
        from repro.core.bigdawg import BigDawg
        from repro.runtime import PolystoreRuntime

        bd = BigDawg()
        postgres = RelationalEngine("postgres")
        bd.add_engine(postgres, islands=["relational"])
        postgres.execute("CREATE TABLE t (a INTEGER, b INTEGER, g INTEGER)")
        postgres.insert_rows("t", [(i, i * 2, i % 3) for i in range(500)])
        with PolystoreRuntime(bd, workers=2) as runtime:
            runtime.execute(
                "RELATIONAL(SELECT s.g FROM t s JOIN t u ON s.a = u.a LIMIT 1)"
            )
            runtime.execute("RELATIONAL(SELECT g, count(*) AS n FROM t GROUP BY g)")
            snapshot = runtime.describe()["metrics"]
        assert snapshot["relational_columns_pruned"] > 0
        assert snapshot["relational_groupby_paths"].get("stream", 0) >= 1
