"""Tests for the streaming engine: streams, windows, procedures, ingestion, recovery, aging."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import DuplicateObjectError, IngestionError, TransactionError
from repro.common.schema import Schema
from repro.engines.array import ArrayEngine
from repro.engines.streaming import (
    AgingPolicy,
    FeedConnection,
    SlidingWindow,
    Stream,
    StreamingEngine,
    TumblingWindow,
)


FEED_SCHEMA = Schema([("signal_id", "integer"), ("sample_index", "integer"), ("value", "float")])


def make_stream(retention: float = 10.0) -> Stream:
    return Stream("feed", FEED_SCHEMA, retention_seconds=retention)


class TestStream:
    def test_append_and_order_enforced(self):
        stream = make_stream()
        stream.append(1.0, (0, 0, 1.5))
        stream.append(2.0, (0, 1, 1.6))
        with pytest.raises(IngestionError):
            stream.append(1.5, (0, 2, 1.7))
        assert len(stream) == 2
        assert stream.latest_timestamp == 2.0

    def test_retention_evicts_old_tuples(self):
        stream = make_stream(retention=5.0)
        for i in range(20):
            stream.append(float(i), (0, i, float(i)))
        assert stream.oldest_timestamp >= 19.0 - 5.0
        evicted = stream.drain_evicted()
        assert len(evicted) + len(stream) == 20
        assert stream.total_appended == 20

    def test_since(self):
        stream = make_stream()
        for i in range(5):
            stream.append(float(i), (0, i, 0.0))
        assert len(stream.since(3.0)) == 2

    def test_schema_validation(self):
        stream = make_stream()
        with pytest.raises(Exception):
            stream.append(0.0, ("not-an-int", 0, 1.0))


class TestWindows:
    def test_sliding_window_contents_and_aggregate(self):
        stream = make_stream()
        for i in range(10):
            stream.append(float(i), (0, i, float(i)))
        window = SlidingWindow(stream, size_seconds=3.0)
        contents = window.contents()
        assert [t.timestamp for t in contents] == [7.0, 8.0, 9.0]
        assert window.aggregate("value", lambda vs: sum(vs) / len(vs)) == pytest.approx(8.0)

    def test_sliding_window_slide_firing(self):
        stream = make_stream()
        window = SlidingWindow(stream, size_seconds=2.0, slide_seconds=1.0)
        assert window.should_fire(0.0)
        window.mark_fired(0.0)
        assert not window.should_fire(0.5)
        assert window.should_fire(1.0)

    def test_tumbling_window_is_aligned_and_disjoint(self):
        stream = make_stream()
        for i in range(10):
            stream.append(i * 0.5, (0, i, float(i)))
        window = TumblingWindow(stream, size_seconds=2.0)
        contents = window.contents(now=3.9)
        assert all(2.0 <= t.timestamp < 4.0 for t in contents)


class TestProceduresAndTransactions:
    def make_engine(self) -> StreamingEngine:
        engine = StreamingEngine(snapshot_interval=50)
        engine.create_stream("feed", FEED_SCHEMA, retention_seconds=100.0)
        return engine

    def test_procedure_runs_per_tuple_and_updates_state(self):
        engine = self.make_engine()

        def body(ctx):
            ctx.state["count"] = ctx.state.get("count", 0) + len(ctx.batch)

        engine.register_procedure("counter", "feed", body)
        for i in range(25):
            engine.append("feed", float(i), (0, i, 1.0))
        assert engine.procedure_state("counter")["count"] == 25
        assert engine.procedure("counter").invocations == 25
        assert len(engine.scheduler.committed) == 25

    def test_alerts_collected(self):
        engine = self.make_engine()

        def body(ctx):
            value = ctx.batch[-1].values[2]
            if value > 5.0:
                ctx.alert(kind="high", value=value)

        engine.register_procedure("alerter", "feed", body)
        for i in range(10):
            engine.append("feed", float(i), (0, i, float(i)))
        assert len(engine.alerts) == 4  # values 6..9

    def test_aborted_procedure_leaves_state_untouched(self):
        engine = self.make_engine()

        def body(ctx):
            ctx.state["count"] = ctx.state.get("count", 0) + 1
            if ctx.state["count"] == 3:
                raise ValueError("synthetic failure")

        engine.register_procedure("flaky", "feed", body)
        engine.append("feed", 0.0, (0, 0, 1.0))
        engine.append("feed", 1.0, (0, 1, 1.0))
        with pytest.raises(TransactionError):
            engine.append("feed", 2.0, (0, 2, 1.0))
        assert engine.procedure_state("flaky")["count"] == 2
        assert engine.scheduler.aborted == 1

    def test_emit_to_downstream_stream(self):
        engine = self.make_engine()
        engine.create_stream("derived", Schema([("value", "float")]), retention_seconds=100.0)

        def body(ctx):
            ctx.emit("derived", ctx.timestamp, (ctx.batch[-1].values[2] * 2,))

        engine.register_procedure("doubler", "feed", body)
        engine.append("feed", 0.0, (0, 0, 2.5))
        derived = engine.stream("derived")
        assert len(derived) == 1
        assert list(derived.tuples())[0].values[0] == 5.0

    def test_emit_to_unknown_stream_aborts(self):
        engine = self.make_engine()
        engine.register_procedure("bad", "feed", lambda ctx: ctx.emit("nowhere", 0.0, (1.0,)))
        with pytest.raises(TransactionError):
            engine.append("feed", 0.0, (0, 0, 1.0))

    def test_duplicate_names_rejected(self):
        engine = self.make_engine()
        engine.register_procedure("p", "feed", lambda ctx: None)
        with pytest.raises(DuplicateObjectError):
            engine.register_procedure("p", "feed", lambda ctx: None)
        with pytest.raises(DuplicateObjectError):
            engine.create_stream("feed", FEED_SCHEMA)


class TestIngestion:
    def test_feed_connection_pumps_batches(self):
        engine = StreamingEngine()
        engine.create_stream("feed", FEED_SCHEMA, retention_seconds=100.0)
        seen = []
        engine.register_procedure("observer", "feed",
                                   lambda ctx: seen.append(len(ctx.batch)), batch_size=10)
        tuples = [(float(i), (0, i, float(i))) for i in range(35)]
        engine.attach_feed(FeedConnection.from_iterable("monitor-1", tuples), "feed")
        total = 0
        while True:
            pumped = engine.pump(max_tuples=10)
            if pumped == 0:
                break
            total += pumped
        assert total == 35
        assert sum(seen) == 35
        assert engine.stream("feed").total_appended == 35

    def test_malformed_tuples_rejected_not_fatal(self):
        engine = StreamingEngine()
        engine.create_stream("feed", FEED_SCHEMA, retention_seconds=100.0)
        tuples = [(0.0, (0, 0, 1.0)), (1.0, ("bad", 1, 1.0)), (2.0, (0, 2, 2.0)), (1.5, (0, 3, 3.0))]
        connection = FeedConnection.from_iterable("noisy", tuples)
        engine.attach_feed(connection, "feed")
        ingested = engine.pump(max_tuples=10)
        assert ingested == 2  # the malformed and the out-of-order tuples are rejected
        assert connection.tuples_rejected == 2

    def test_unknown_connection(self):
        engine = StreamingEngine()
        with pytest.raises(IngestionError):
            engine.ingestion.pump("missing")


class TestRecovery:
    def test_snapshot_plus_replay_reconstructs_state(self):
        engine = StreamingEngine(snapshot_interval=10)
        engine.create_stream("feed", FEED_SCHEMA, retention_seconds=1000.0)

        def body(ctx):
            ctx.state["total"] = ctx.state.get("total", 0.0) + ctx.batch[-1].values[2]

        engine.register_procedure("summer", "feed", body)
        for i in range(27):
            engine.append("feed", float(i), (0, i, 1.0))
        expected = engine.procedure_state("summer")["total"]
        assert len(engine.recovery.snapshots) == 2  # at txn 10 and 20
        # Simulate a crash: wipe in-memory state, then recover.
        engine._procedure_state["summer"] = {}
        replayed = engine.simulate_crash_and_recover()
        assert replayed == 7  # transactions 21..27 replayed on top of snapshot 20
        assert engine.procedure_state("summer")["total"] == pytest.approx(expected)

    def test_recovery_without_snapshots_replays_everything(self):
        engine = StreamingEngine(snapshot_interval=1000)
        engine.create_stream("feed", FEED_SCHEMA, retention_seconds=1000.0)

        def body(ctx):
            ctx.state["count"] = ctx.state.get("count", 0) + 1

        engine.register_procedure("counter", "feed", body)
        for i in range(5):
            engine.append("feed", float(i), (0, i, 1.0))
        engine._procedure_state["counter"] = {}
        assert engine.simulate_crash_and_recover() == 5
        assert engine.procedure_state("counter")["count"] == 5


class TestAging:
    def test_evicted_tuples_age_into_array_engine(self):
        engine = StreamingEngine()
        stream = engine.create_stream("feed", FEED_SCHEMA, retention_seconds=2.0)
        array_engine = ArrayEngine("scidb")
        policy = AgingPolicy(stream, array_engine, "history", max_series=2, max_samples=1000)
        engine.add_aging_policy(policy)
        for i in range(200):
            engine.append("feed", i * 0.05, (0, i, float(i)))
        assert policy.tuples_aged > 0
        assert array_engine.has_object("history")
        cold = policy.cold_values(0)
        hot = policy.hot_tuples(0)
        assert len(cold) + len(hot) == 200
        combined = policy.combined_series(0)
        np.testing.assert_allclose(combined, np.arange(200, dtype=float))

    def test_engine_export_relation(self):
        engine = StreamingEngine()
        engine.create_stream("feed", FEED_SCHEMA, retention_seconds=100.0)
        engine.append("feed", 0.5, (1, 0, 9.0))
        relation = engine.export_relation("feed")
        assert relation.schema.names == ["timestamp", "signal_id", "sample_index", "value"]
        assert relation.rows[0]["value"] == 9.0

    def test_import_relation_orders_by_timestamp(self):
        from repro.common.schema import Relation

        engine = StreamingEngine()
        schema = Schema([("timestamp", "float"), ("value", "float")])
        relation = Relation(schema, [[2.0, 20.0], [1.0, 10.0], [3.0, 30.0]])
        engine.import_relation("s", relation)
        values = [t.values[0] for t in engine.stream("s").tuples()]
        assert values == [10.0, 20.0, 30.0]

    def test_statistics_shape(self):
        engine = StreamingEngine()
        engine.create_stream("feed", FEED_SCHEMA)
        stats = engine.statistics()
        assert set(stats) >= {"streams", "procedures", "committed_transactions", "alerts"}
