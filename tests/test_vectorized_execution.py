"""Tests for the vectorized relational executor: batches, kernels, mode parity.

The contract under test: the ``vectorized`` and ``row`` execution modes are
observably identical — same schemas, same values, same ordering — with the
vectorized path never constructing per-row ``Row`` objects on its scan and
export hot paths.
"""

from __future__ import annotations

import pytest

from repro.common import schema as schema_mod
from repro.common.expressions import (
    BinaryOp,
    ColumnRef,
    Literal,
    _like_regex,
    compile_predicate,
)
from repro.common.schema import Column, ColumnBatch, ColumnarRelation, Schema
from repro.common.serialization import BinaryCodec
from repro.common.types import DataType
from repro.engines.relational import RelationalEngine
from repro.engines.relational.vectorized import compile_filter_kernel


# ------------------------------------------------------------------ fixtures
def make_engine(mode: str) -> RelationalEngine:
    """A deterministic two-table engine, identical for every call."""
    e = RelationalEngine("pg", execution_mode=mode)
    e.execute(
        "CREATE TABLE events (id INTEGER PRIMARY KEY, grp TEXT, value FLOAT, "
        "flag INTEGER, note TEXT)"
    )
    rows = []
    for i in range(500):
        grp = ["alpha", "beta", "gamma", None][i % 4]
        value = None if i % 11 == 0 else (i * 7 % 100) / 3.0
        flag = None if i % 13 == 0 else i % 5
        note = None if i % 17 == 0 else f"note_{i % 23}"
        rows.append((i, grp, value, flag, note))
    e.insert_rows("events", rows)
    e.execute("CREATE TABLE dims (grp TEXT, weight FLOAT)")
    e.insert_rows(
        "dims", [("alpha", 1.5), ("beta", 2.5), ("delta", 9.0), (None, 0.5)]
    )
    return e


#: A grid of queries spanning NULL-heavy columns, LIKE, outer joins, global
#: aggregates, DISTINCT, CASE, IN, scalar functions, HAVING and subqueries.
QUERY_GRID = [
    "SELECT * FROM events",
    "SELECT id, value FROM events WHERE value > 20 AND flag = 3",
    "SELECT id FROM events WHERE value IS NULL ORDER BY id",
    "SELECT id FROM events WHERE grp IS NOT NULL AND flag IN (1, 2) ORDER BY id DESC LIMIT 7 OFFSET 3",
    "SELECT id, note FROM events WHERE note LIKE 'note_1%' ORDER BY id",
    "SELECT count(*) AS n, sum(value) AS s, avg(value) AS a, min(value) AS lo, max(value) AS hi FROM events",
    "SELECT count(*) AS n FROM events WHERE value > 200",
    "SELECT grp, count(*) AS n, avg(value) AS a FROM events GROUP BY grp ORDER BY n DESC",
    "SELECT grp, count(*) AS n FROM events GROUP BY grp HAVING count(*) > 100",
    "SELECT DISTINCT grp FROM events ORDER BY grp",
    "SELECT DISTINCT flag, grp FROM events WHERE id < 50",
    "SELECT e.id, d.weight FROM events e JOIN dims d ON e.grp = d.grp WHERE e.value > 10 ORDER BY e.id LIMIT 20",
    "SELECT e.id, d.weight FROM events e LEFT JOIN dims d ON e.grp = d.grp ORDER BY e.id LIMIT 40",
    "SELECT d.grp, count(*) AS n FROM dims d JOIN events e ON d.grp = e.grp GROUP BY d.grp ORDER BY d.grp",
    # Outer joins: NULL-keyed rows on both sides, unmatched rows both ways.
    "SELECT e.id, e.grp, d.weight FROM events e LEFT JOIN dims d ON e.grp = d.grp",
    "SELECT e.id, d.grp, d.weight FROM events e RIGHT JOIN dims d ON e.grp = d.grp",
    "SELECT e.id, e.grp, d.grp, d.weight FROM events e FULL OUTER JOIN dims d ON e.grp = d.grp",
    "SELECT d.grp, e.id FROM dims d LEFT OUTER JOIN events e ON d.grp = e.grp AND e.value > 25",
    "SELECT e.id, d.weight FROM events e FULL JOIN dims d ON e.grp = d.grp WHERE e.flag = 2 OR e.flag IS NULL",
    # Multi-column group-by and NULL-heavy grouped aggregates.
    "SELECT grp, flag, count(*) AS n, sum(value) AS s FROM events GROUP BY grp, flag",
    "SELECT grp, avg(value) AS a, min(value) AS lo, max(value) AS hi, count(value) AS c FROM events GROUP BY grp",
    "SELECT flag, grp, note, count(*) AS n FROM events GROUP BY flag, grp, note ORDER BY n DESC, flag, grp, note",
    "SELECT note, min(grp) AS g, count(*) AS n FROM events GROUP BY note HAVING count(*) > 10",
    "SELECT CASE WHEN value >= 20 THEN 'high' ELSE 'low' END AS band, id FROM events WHERE id < 30",
    "SELECT upper(grp) AS g, round(value) AS r FROM events WHERE id BETWEEN 10 AND 40 ORDER BY id",
    "SELECT count(*) AS n FROM (SELECT id FROM events WHERE flag = 2) t",
    "SELECT stddev(value) AS sd, count(DISTINCT grp) AS g FROM events",
    "SELECT id, value FROM events WHERE id = 137",
    "SELECT id FROM events WHERE id >= 480 ORDER BY id",
    "SELECT id, -value AS neg, NOT (flag = 1) AS nf FROM events WHERE id < 20",
    "SELECT 1 + 2 AS three",
]


class TestModeParity:
    """Property: both executors return identical relations for every query."""

    @pytest.fixture(scope="class")
    def engines(self):
        return make_engine("vectorized"), make_engine("row")

    @pytest.mark.parametrize("query", QUERY_GRID)
    def test_vectorized_equals_row(self, engines, query):
        vectorized, row = engines
        result_v = vectorized.execute(query)
        result_r = row.execute(query)
        assert result_v.schema == result_r.schema
        assert [r.values for r in result_v.rows] == [r.values for r in result_r.rows]

    @pytest.mark.parametrize(
        "query",
        [
            "SELECT count(*) AS n, sum(value) AS s, avg(value) AS a FROM events WHERE value > 20 AND flag = 3",
            "SELECT grp, count(*) AS n FROM events GROUP BY grp ORDER BY grp",
            "SELECT grp, flag, avg(value) AS a, sum(value) AS s, min(value) AS lo FROM events GROUP BY grp, flag",
            "SELECT e.id, e.grp, d.weight FROM events e LEFT JOIN dims d ON e.grp = d.grp",
            "SELECT e.id, d.grp FROM events e FULL OUTER JOIN dims d ON e.grp = d.grp",
        ],
    )
    def test_results_byte_identical_through_codec(self, engines, query):
        vectorized, row = engines
        codec = BinaryCodec()
        assert codec.encode(vectorized.execute(query)) == codec.encode(row.execute(query))

    @pytest.fixture(scope="class")
    def parallel_engines(self):
        engines = {}
        for workers in (1, 2, 4):
            e = make_engine("vectorized")
            e.parallelism = workers
            engines[workers] = e
        return engines

    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("query", QUERY_GRID)
    def test_byte_identical_across_worker_counts(
        self, parallel_engines, workers, query
    ):
        """Morsel parallelism is invisible: every grid query returns the same
        bytes at any worker count as the fully serial pipeline."""
        serial = parallel_engines[1].execute(query)
        parallel = parallel_engines[workers].execute(query)
        assert parallel.schema == serial.schema
        assert [r.values for r in parallel.rows] == [r.values for r in serial.rows]
        codec = BinaryCodec()
        try:
            expected = codec.encode(serial)
        except ValueError:
            # A pre-existing inference quirk (min over TEXT typed FLOAT)
            # makes a few grid schemas unencodable on every path; the exact
            # value comparison above already covers those.
            return
        assert codec.encode(parallel) == expected

    def test_update_delete_agree_across_modes(self):
        results = {}
        for mode in ("vectorized", "row"):
            e = make_engine(mode)
            e.execute("UPDATE events SET value = value + 1 WHERE flag = 2 AND value > 10")
            e.execute("DELETE FROM events WHERE note LIKE 'note_2%'")
            results[mode] = [r.values for r in e.execute("SELECT * FROM events ORDER BY id").rows]
        assert results["vectorized"] == results["row"]


class TestExecutionModeKnob:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            RelationalEngine("pg", execution_mode="warp")
        e = RelationalEngine("pg")
        with pytest.raises(ValueError):
            e.execution_mode = "warp"

    def test_mode_counters(self):
        e = make_engine("vectorized")
        e.execute("SELECT count(*) FROM events")
        e.execution_mode = "row"
        e.execute("SELECT count(*) FROM events")
        e.execute("SELECT count(*) FROM events")
        assert e.executions_by_mode["vectorized"] == 1
        assert e.executions_by_mode["row"] == 2

    def test_explain_reports_mode_and_operator_paths(self):
        e = make_engine("vectorized")
        plan = e.explain(
            "SELECT e.id, d.weight FROM events e LEFT JOIN dims d ON e.grp = d.grp WHERE e.value > 1"
        )
        assert plan.startswith("ExecutionMode(vectorized)")
        # Equi outer joins run on the batch pipeline now — no row fallback.
        join_line = next(line for line in plan.splitlines() if "Join" in line)
        assert "[vectorized]" in join_line
        scan_line = next(line for line in plan.splitlines() if "SeqScan" in line)
        assert "[vectorized]" in scan_line
        e.execution_mode = "row"
        assert e.explain("SELECT id FROM events").startswith("ExecutionMode(row)")
        assert "[vectorized]" not in e.explain("SELECT id FROM events")

    def test_explain_annotates_fallback_reason(self):
        e = make_engine("vectorized")
        plan = e.explain(
            "SELECT e.id FROM events e JOIN dims d ON e.value > d.weight LIMIT 5"
        )
        join_line = next(line for line in plan.splitlines() if "Join" in line)
        assert "[row: non-equi join]" in join_line
        cross = e.explain("SELECT count(*) AS n FROM events CROSS JOIN dims")
        cross_join_line = next(line for line in cross.splitlines() if "Join" in line)
        assert "[row: cross join]" in cross_join_line

    def test_fallback_reason_counters(self):
        e = make_engine("vectorized")
        assert e.fallback_reasons == {}
        e.execute("SELECT count(*) AS n FROM events CROSS JOIN dims")
        e.execute("SELECT count(*) AS n FROM events CROSS JOIN dims")
        e.execute("SELECT e.id FROM events e JOIN dims d ON e.value > d.weight LIMIT 5")
        assert e.fallback_reasons.get("cross join") == 2
        assert e.fallback_reasons.get("non-equi join") == 1
        # Vectorized shapes leave the counters alone.
        e.execute("SELECT e.id FROM events e LEFT JOIN dims d ON e.grp = d.grp LIMIT 5")
        assert sum(e.fallback_reasons.values()) == 3


class TestColumnBatch:
    def test_transpose_roundtrip(self):
        schema = Schema([("a", "integer"), ("b", "text")])
        batch = ColumnBatch.from_value_rows(schema, [(1, "x"), (2, "y"), (3, None)])
        assert len(batch) == 3
        assert [list(col) for col in batch.columns] == [[1, 2, 3], ["x", "y", None]]
        assert list(batch.value_rows()) == [(1, "x"), (2, "y"), (3, None)]

    def test_compress_and_take(self):
        schema = Schema([("a", "integer")])
        batch = ColumnBatch.from_value_rows(schema, [(i,) for i in range(6)])
        assert batch.compress([True, False, True, False, True, False]).columns == [[0, 2, 4]]
        assert batch.take([5, 0]).columns == [[5, 0]]

    def test_columnar_relation_lazy_rows(self):
        schema = Schema([("a", "integer"), ("b", "float")])
        relation = ColumnarRelation(schema, [[1, 2], [0.5, 1.5]])
        assert len(relation) == 2
        assert relation.column_values(0) == [1, 2]  # no Row materialization
        assert relation._materialized is False
        assert [r.values for r in relation.rows] == [(1, 0.5), (2, 1.5)]
        assert relation._materialized is True

    def test_columnar_relation_append_after_materialize(self):
        schema = Schema([("a", "integer")])
        relation = ColumnarRelation(schema, [[1]])
        relation.append([2])
        assert len(relation) == 2
        assert relation.column_values(0) == [1, 2]


class TestColumnarExport:
    def test_export_chunks_builds_no_rows(self, monkeypatch):
        engine = RelationalEngine("pg")
        engine.execute("CREATE TABLE m (a INTEGER, b FLOAT)")
        engine.insert_rows("m", [(i, i * 0.5) for i in range(5000)])
        codec = BinaryCodec()
        constructed = []
        original = schema_mod.Row.__init__

        def counting(self, *args, **kwargs):
            constructed.append(1)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(schema_mod.Row, "__init__", counting)
        payloads = [codec.encode(chunk) for chunk in engine.export_chunks("m", chunk_size=1024)]
        monkeypatch.undo()
        assert len(payloads) == 5
        assert not constructed, "columnar CAST export must not build Row objects"
        # And the payloads decode to the full table.
        total = sum(len(codec.decode(p, engine.export_schema("m"))) for p in payloads)
        assert total == 5000

    def test_export_chunks_rows_still_available_lazily(self):
        engine = RelationalEngine("pg")
        engine.execute("CREATE TABLE m (a INTEGER, t TEXT)")
        engine.insert_rows("m", [(1, "x"), (2, "y")])
        chunks = list(engine.export_chunks("m"))
        assert [r.values for chunk in chunks for r in chunk] == [(1, "x"), (2, "y")]


class TestLikeCompilation:
    def test_like_regex_compiled_once(self):
        _like_regex.cache_clear()
        engine = make_engine("row")  # the interpreted path used to recompile per row
        result = engine.execute("SELECT count(*) AS n FROM events WHERE note LIKE 'note_1%'")
        assert result.rows[0]["n"] > 0
        info = _like_regex.cache_info()
        assert info.misses == 1, "LIKE pattern must compile exactly once"
        assert info.hits >= 400  # one hit per scanned non-null row after the first

    def test_like_semantics_unchanged(self):
        engine = make_engine("vectorized")
        # % spans any run, _ exactly one character; both are case sensitive.
        rows = engine.execute(
            "SELECT DISTINCT note FROM events WHERE note LIKE 'note__' ORDER BY note"
        )
        notes = [r["note"] for r in rows]
        assert notes and all(len(n) == 6 and n.startswith("note_") for n in notes)
        none = engine.execute("SELECT count(*) AS n FROM events WHERE note LIKE 'NOTE%'")
        assert none.rows[0]["n"] == 0
        # Regex metacharacters in the pattern stay literal.
        literal = engine.execute("SELECT count(*) AS n FROM events WHERE note LIKE 'note.1'")
        assert literal.rows[0]["n"] == 0


class TestFilterKernel:
    def make_schema(self) -> Schema:
        return Schema(
            [
                Column("a", DataType.INTEGER),
                Column("b", DataType.FLOAT),
                Column("t", DataType.TEXT),
            ]
        )

    def test_numeric_kernel_matches_row_semantics_with_nulls(self):
        schema = self.make_schema()
        predicate = BinaryOp(
            "and",
            BinaryOp(">", ColumnRef("a"), Literal(1)),
            BinaryOp("<", ColumnRef("b"), Literal(10.0)),
        )
        kernel = compile_filter_kernel(predicate, schema)
        assert kernel is not None
        rows = [
            (0, 5.0, "x"),
            (2, None, "x"),
            (3, 4.0, "x"),
            (None, 1.0, "x"),
            (9, 99.0, "x"),
        ]
        batch = ColumnBatch.from_value_rows(schema, rows)
        mask = kernel(batch)
        reference = compile_predicate(predicate, schema)
        assert list(mask) == [reference(row) for row in rows]

    def test_text_predicates_have_no_kernel(self):
        schema = self.make_schema()
        predicate = BinaryOp("=", ColumnRef("t"), Literal("x"))
        assert compile_filter_kernel(predicate, schema) is None

    def test_division_over_integer_columns_left_to_row_path(self):
        # int64 true division would double-round where Python's int/int does
        # not; only float columns get the masked-division kernel.
        schema = self.make_schema()
        predicate = BinaryOp(">", BinaryOp("/", ColumnRef("a"), ColumnRef("b")), Literal(1))
        assert compile_filter_kernel(predicate, schema) is None

    def test_masked_division_kernel_over_float_columns(self):
        schema = Schema([Column("x", DataType.FLOAT), Column("y", DataType.FLOAT)])
        predicate = BinaryOp(">", BinaryOp("/", ColumnRef("x"), ColumnRef("y")), Literal(1))
        kernel = compile_filter_kernel(predicate, schema)
        assert kernel is not None
        batch = ColumnBatch.from_value_rows(
            schema, [(4.0, 2.0), (1.0, 2.0), (None, 0.0), (3.0, None)]
        )
        # NULL dividend or divisor yields NULL (no error), like _null_safe.
        assert list(kernel(batch)) == [True, False, False, False]

    def test_masked_division_raises_like_row_path(self):
        from repro.common.errors import ExecutionError

        schema = Schema([Column("x", DataType.FLOAT), Column("y", DataType.FLOAT)])
        predicate = BinaryOp(">", BinaryOp("/", ColumnRef("x"), ColumnRef("y")), Literal(1))
        kernel = compile_filter_kernel(predicate, schema)
        batch = ColumnBatch.from_value_rows(schema, [(4.0, 2.0), (1.0, 0.0)])
        with pytest.raises(ExecutionError, match="division by zero"):
            kernel(batch)

    def test_masked_division_respects_and_short_circuit(self):
        # Row semantics: `y > 0 AND x / y > 1` never divides where y <= 0,
        # so a zero divisor behind the guard must not raise.
        schema = Schema([Column("x", DataType.FLOAT), Column("y", DataType.FLOAT)])
        predicate = BinaryOp(
            "and",
            BinaryOp(">", ColumnRef("y"), Literal(0)),
            BinaryOp(">", BinaryOp("/", ColumnRef("x"), ColumnRef("y")), Literal(1)),
        )
        kernel = compile_filter_kernel(predicate, schema)
        assert kernel is not None
        batch = ColumnBatch.from_value_rows(
            schema, [(4.0, 2.0), (9.0, 0.0), (1.0, 2.0), (5.0, None)]
        )
        assert list(kernel(batch)) == [True, False, False, False]

    def test_modulo_kernel_matches_python_semantics(self):
        schema = Schema([Column("x", DataType.FLOAT)])
        predicate = BinaryOp("=", BinaryOp("%", ColumnRef("x"), Literal(3)), Literal(1.0))
        kernel = compile_filter_kernel(predicate, schema)
        assert kernel is not None
        batch = ColumnBatch.from_value_rows(schema, [(7.0,), (-2.0,), (6.0,), (None,)])
        reference = compile_predicate(predicate, schema)
        assert list(kernel(batch)) == [reference(row) for row in batch.value_rows()]


class TestDivisionModeParity:
    """Satellite (e): `/` and `%` kernels keep per-row error semantics."""

    @staticmethod
    def build(mode):
        e = RelationalEngine("d", execution_mode=mode)
        e.execute("CREATE TABLE m (x FLOAT, y FLOAT)")
        e.insert_rows("m", [(4.0, 2.0), (9.0, 3.0), (1.0, 4.0), (None, 5.0), (8.0, None)])
        return e

    def test_division_results_identical(self):
        results = {}
        for mode in ("vectorized", "row"):
            e = self.build(mode)
            results[mode] = [
                r.values for r in e.execute("SELECT x FROM m WHERE x / y > 1.5 ORDER BY x").rows
            ]
        assert results["vectorized"] == results["row"] == [(4.0,), (9.0,)]

    def test_division_by_zero_raises_in_both_modes(self):
        from repro.common.errors import ExecutionError

        for mode in ("vectorized", "row"):
            e = self.build(mode)
            e.execute("INSERT INTO m VALUES (1.0, 0.0)")
            with pytest.raises(ExecutionError, match="division by zero"):
                e.execute("SELECT x FROM m WHERE x / y > 1")

    def test_zero_divisor_behind_and_guard_skipped_in_both_modes(self):
        results = {}
        for mode in ("vectorized", "row"):
            e = self.build(mode)
            e.insert_rows("m", [(7.0, 0.0)])
            results[mode] = [
                r.values
                for r in e.execute(
                    "SELECT x FROM m WHERE y > 1 AND x / y > 1.5 ORDER BY x"
                ).rows
            ]
        assert results["vectorized"] == results["row"] == [(4.0,), (9.0,)]


class TestOuterJoinWherePlacement:
    """WHERE is post-join for outer joins: no pushdown to the padded side."""

    @staticmethod
    def build(mode):
        e = RelationalEngine("w", execution_mode=mode)
        e.execute("CREATE TABLE a (id INTEGER, k INTEGER)")
        e.execute("CREATE TABLE b (k INTEGER, v FLOAT)")
        e.insert_rows("a", [(1, 1), (2, 2)])
        e.insert_rows("b", [(1, 5.0)])
        return e

    def test_where_on_padded_side_filters_padded_rows(self):
        for mode in ("vectorized", "row"):
            e = self.build(mode)
            rows = [
                r.values
                for r in e.execute(
                    "SELECT a.id, b.v FROM a LEFT JOIN b ON a.k = b.k WHERE b.v > 0"
                ).rows
            ]
            # Standard SQL: the padded row (2, NULL) cannot satisfy b.v > 0.
            assert rows == [(1, 5.0)], mode

    def test_where_on_preserved_side_still_pushes_down(self):
        e = self.build("vectorized")
        plan = e.explain("SELECT a.id FROM a LEFT JOIN b ON a.k = b.k WHERE a.id > 1")
        scan_a = next(line for line in plan.splitlines() if "SeqScan(a)" in line)
        assert "filter=" in scan_a  # preserved-side conjunct pushed onto the scan
        rows = [
            r.values
            for r in e.execute(
                "SELECT a.id, b.v FROM a LEFT JOIN b ON a.k = b.k WHERE a.id > 1"
            ).rows
        ]
        assert rows == [(2, None)]

    def test_full_join_where_stays_above(self):
        for mode in ("vectorized", "row"):
            e = self.build(mode)
            rows = [
                r.values
                for r in e.execute(
                    "SELECT a.id, b.v FROM a FULL JOIN b ON a.k = b.k WHERE a.id IS NOT NULL"
                ).rows
            ]
            assert rows == [(1, 5.0), (2, None)], mode


class TestNaNParity:
    """NaN shapes force the per-row accumulators (position-dependent folds)."""

    def test_grouped_min_max_with_nan_matches_row_mode(self):
        import math

        out = {}
        for mode in ("vectorized", "row"):
            e = RelationalEngine("n", execution_mode=mode)
            e.execute("CREATE TABLE t (g INTEGER, v FLOAT)")
            e.insert_rows(
                "t",
                [(1, 5.0), (1, float("nan")), (2, float("nan")), (2, 3.0), (1, 2.0)],
            )
            out[mode] = [
                r.values
                for r in e.execute(
                    "SELECT g, min(v) AS lo, max(v) AS hi FROM t GROUP BY g"
                ).rows
            ]

        def same(x, y):
            if isinstance(x, float) and isinstance(y, float):
                return x == y or (math.isnan(x) and math.isnan(y))
            return x == y

        assert all(
            same(x, y)
            for a, b in zip(out["vectorized"], out["row"])
            for x, y in zip(a, b)
        )

    def test_nan_group_keys_match_row_mode(self):
        out = {}
        for mode in ("vectorized", "row"):
            e = RelationalEngine("n2", execution_mode=mode)
            e.execute("CREATE TABLE t (v FLOAT)")
            e.insert_rows("t", [(float("nan"),), (1.0,), (float("nan"),), (1.0,)])
            out[mode] = [
                r.values
                for r in e.execute("SELECT v, count(*) AS n FROM t GROUP BY v").rows
            ]
        # Distinct NaN objects are distinct dict keys on the row path; the
        # vectorized path must not collapse them into one group.
        assert len(out["vectorized"]) == len(out["row"]) == 3
        assert [n for _v, n in out["vectorized"]] == [n for _v, n in out["row"]]

    def test_self_referential_equality_not_tagged_vectorized(self):
        e = RelationalEngine("sr")
        e.execute("CREATE TABLE a (x INTEGER)")
        e.execute("CREATE TABLE b (y INTEGER)")
        e.insert_rows("a", [(1,)])
        e.insert_rows("b", [(2,)])
        plan = e.explain("SELECT a.x FROM a JOIN b ON a.x = a.x")
        join_line = next(line for line in plan.splitlines() if "Join" in line)
        assert "[row: non-equi join]" in join_line
        # And execution agrees with row mode (falls back, same answer).
        vec = [r.values for r in e.execute("SELECT a.x FROM a JOIN b ON a.x = a.x").rows]
        e.execution_mode = "row"
        assert vec == [r.values for r in e.execute("SELECT a.x FROM a JOIN b ON a.x = a.x").rows]


class TestBuildSideHint:
    """Satellite: the planner's build-side decision reaches both executors."""

    @staticmethod
    def build(mode="vectorized"):
        e = RelationalEngine("b", execution_mode=mode)
        e.execute("CREATE TABLE big (id INTEGER, k INTEGER)")
        e.insert_rows("big", [(i, i % 40) for i in range(2000)])
        e.execute("CREATE TABLE small (k INTEGER, tag TEXT)")
        e.insert_rows("small", [(k, f"t{k}") for k in range(30)])
        return e

    def test_planner_builds_on_smaller_side(self):
        e = self.build()
        # Large left, small right: the hash table must build on the right.
        plan = e.explain("SELECT b.id, s.tag FROM big b JOIN small s ON b.k = s.k")
        join_line = next(line for line in plan.splitlines() if "Join" in line)
        assert "build=right" in join_line
        # Small left, large right: build stays on the left.
        plan = e.explain("SELECT b.id, s.tag FROM small s JOIN big b ON b.k = s.k")
        join_line = next(line for line in plan.splitlines() if "Join" in line)
        assert "build=left" in join_line

    def test_outer_join_with_empty_build_side(self):
        # Regression: the pad gather must not index into zero-length build
        # columns when the right side is empty (or filtered to nothing).
        out = {}
        for mode in ("vectorized", "row"):
            e = RelationalEngine("eb", execution_mode=mode)
            e.execute("CREATE TABLE a (id INTEGER, k INTEGER)")
            e.execute("CREATE TABLE b (k INTEGER, w FLOAT)")
            e.insert_rows("a", [(1, 10), (2, 20)])
            out[mode] = {
                "empty": [
                    r.values
                    for r in e.execute(
                        "SELECT a.id, b.w FROM a LEFT JOIN b ON a.k = b.k"
                    ).rows
                ],
                "full": [
                    r.values
                    for r in e.execute(
                        "SELECT a.id, b.w FROM a FULL JOIN b ON a.k = b.k"
                    ).rows
                ],
            }
        assert out["vectorized"] == out["row"]
        assert out["row"]["empty"] == [(1, None), (2, None)]

    def test_probe_key_beyond_int64_matches_row_mode(self):
        # Regression: a probe-side Python int too large for int64 must probe
        # as "no match", not crash the numeric transform.
        out = {}
        for mode in ("vectorized", "row"):
            e = RelationalEngine("oi", execution_mode=mode)
            e.execute("CREATE TABLE big (k INTEGER)")
            e.execute("CREATE TABLE small (k INTEGER, tag TEXT)")
            e.insert_rows("big", [(2**70,), (5,), (7,)])
            e.insert_rows("small", [(5, "five"), (9, "nine")])
            out[mode] = [
                r.values
                for r in e.execute(
                    "SELECT b.k, s.tag FROM big b LEFT JOIN small s ON b.k = s.k"
                ).rows
            ]
        assert out["vectorized"] == out["row"]
        assert (2**70, None) in out["row"] and (5, "five") in out["row"]

    def test_large_left_small_right_parity(self):
        out = {}
        for mode in ("vectorized", "row"):
            e = self.build(mode)
            out[mode] = [
                r.values
                for r in e.execute(
                    "SELECT b.id, s.tag FROM big b JOIN small s ON b.k = s.k ORDER BY b.id"
                ).rows
            ]
        assert out["vectorized"] == out["row"]
        assert len(out["row"]) == 1500  # 2000 rows, 30 of 40 key values match


class TestModeParityEdgeCases:
    """Regressions for divergences the numeric kernels could introduce."""

    @staticmethod
    def run_both(create_sql, table, rows, query):
        out = {}
        for mode in ("vectorized", "row"):
            e = RelationalEngine("t", execution_mode=mode)
            e.execute(create_sql)
            e.insert_rows(table, rows)
            out[mode] = [r.values for r in e.execute(query).rows]
        return out

    def test_integer_arithmetic_does_not_wrap(self):
        # int64 kernels would wrap 4e9**2 negative; Python ints must win.
        out = self.run_both(
            "CREATE TABLE t (v INTEGER)", "t",
            [(4_000_000_000,), (2,)],
            "SELECT v FROM t WHERE v * v > 0",
        )
        assert out["vectorized"] == out["row"] == [(4_000_000_000,), (2,)]

    def test_falsy_integer_and_null_is_null(self):
        # Row mode short-circuits AND only on the literal False: 0 AND NULL
        # is NULL (excluded), and NOT NULL stays NULL.
        out = self.run_both(
            "CREATE TABLE u (flag INTEGER, y FLOAT)", "u",
            [(0, None), (0, 1.0), (1, 9.0)],
            "SELECT flag FROM u WHERE NOT (flag AND y > 5)",
        )
        assert out["vectorized"] == out["row"]

    def test_sum_over_text_concatenates_like_row_mode(self):
        out = self.run_both(
            "CREATE TABLE s (name TEXT)", "s",
            [("a",), ("b",)],
            "SELECT sum(name) AS s FROM s",
        )
        assert out["vectorized"] == out["row"] == [("ab",)]


class TestRuntimeModeThreading:
    def test_scheduler_metrics_report_execution_modes(self):
        from repro.core.bigdawg import BigDawg
        from repro.runtime import PolystoreRuntime

        bigdawg = BigDawg()
        engine = RelationalEngine("postgres")
        bigdawg.add_engine(engine, islands=["relational"])
        engine.execute("CREATE TABLE t (id INTEGER, v FLOAT)")
        engine.insert_rows("t", [(1, 2.0), (2, 4.0)])
        runtime = PolystoreRuntime(bigdawg, workers=2)
        try:
            runtime.execute("RELATIONAL(SELECT count(*) AS n FROM t)", use_cache=False)
            modes = runtime.describe()["metrics"]["relational_execution_modes"]
            assert modes.get("vectorized", 0) >= 1
            runtime.set_relational_execution_mode("row")
            assert engine.execution_mode == "row"
            runtime.execute("RELATIONAL(SELECT count(*) AS n FROM t)", use_cache=False)
            modes = runtime.describe()["metrics"]["relational_execution_modes"]
            assert modes.get("row", 0) >= 1
        finally:
            runtime.shutdown()

    def test_runtime_metrics_report_fallback_reasons(self):
        from repro.core.bigdawg import BigDawg
        from repro.runtime import PolystoreRuntime

        bigdawg = BigDawg()
        engine = RelationalEngine("postgres")
        bigdawg.add_engine(engine, islands=["relational"])
        engine.execute("CREATE TABLE a (id INTEGER)")
        engine.execute("CREATE TABLE b (id INTEGER)")
        engine.insert_rows("a", [(1,), (2,)])
        engine.insert_rows("b", [(1,), (3,)])
        runtime = PolystoreRuntime(bigdawg, workers=2)
        try:
            runtime.execute(
                "RELATIONAL(SELECT count(*) AS n FROM a CROSS JOIN b)", use_cache=False
            )
            reasons = runtime.describe()["metrics"]["relational_fallback_reasons"]
            assert reasons.get("cross join", 0) >= 1
            # Vectorized equi-joins do not add fallback counts.
            runtime.execute(
                "RELATIONAL(SELECT count(*) AS n FROM a LEFT JOIN b ON a.id = b.id)",
                use_cache=False,
            )
            after = runtime.describe()["metrics"]["relational_fallback_reasons"]
            assert sum(after.values()) == sum(reasons.values())
        finally:
            runtime.shutdown()
